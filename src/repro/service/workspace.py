"""The :class:`Workspace`: one stateful facade over batch, indexed and
streaming sDTW.

Before this layer the library had four parallel front doors —
:class:`~repro.core.sdtw.SDTW` for pairwise distances,
:class:`~repro.engine.DistanceEngine` for exact batch k-NN,
:class:`~repro.indexing.IndexedSearcher` for sublinear indexed search and
:class:`~repro.streaming.StreamMonitor` for online monitoring — each with
its own construction ritual and on-disk artefacts.  A ``Workspace`` owns
all of them behind one object model and one versioned directory layout::

    workspace-dir/
        workspace.json    # manifest: format/version, WorkspaceConfig,
                          # series roster (insertion order + labels),
                          # index state
        store.npz         # FeatureStore: raw series + salient features
        index/            # optional inverted index (IndexWriter layout:
                          # manifest.json, codebook.npz, mmappable shards)

Lifecycle::

    ws = Workspace.create("my-ws")          # or Workspace() for in-memory
    ws.add(series, identifier="a")          # features extracted once
    ws.build_index()                        # optional sublinear path
    ws.query(q, k=5, mode="auto")           # exact | indexed | auto
    ws.pairwise(x, y)                       # one sDTW distance
    ws.stream(pattern, threshold=2.0)       # online monitoring
    ws.close()                              # persists mutations

    ws = Workspace.open("my-ws")            # serves without re-extraction

Results are bit-identical to the direct subsystem calls: ``exact`` mode
*is* the engine cascade, ``indexed`` mode *is* the two-stage searcher,
and ``auto`` just picks between them (indexed when a fresh index exists).

Concurrency model
-----------------
Mutations (``add`` / ``add_batch`` / ``build_index`` / ``save``) take an
``RLock``.  Queries never take it for the duration of a scan: they grab
the current immutable *serving snapshot* (a prepared engine plus the
optional searcher, rebuilt lazily after mutations) and run on it, so
readers are lock-free once the snapshot exists — index shards are
memory-mapped, and the engine's prepared caches are never mutated by a
query.  A query racing a mutation simply serves the snapshot taken
before the mutation; it can never observe a half-added series.
Optionally, concurrent exact queries are coalesced through a
:class:`~repro.service.batching.MicroBatcher` into single engine batch
calls for throughput.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series, check_int_at_least
from ..core.sdtw import SDTW, SDTWResult
from ..datasets.base import Dataset
from ..engine import BatchKNNResult, DistanceEngine
from ..engine.engine import EngineHit
from ..engine.stats import EngineStats
from ..exceptions import DatasetError, ValidationError, WorkspaceError
from ..indexing import (
    CodebookConfig,
    IndexReader,
    IndexedSearcher,
    PQConfig,
    pq_entry_for,
)
from ..retrieval.feature_store import FeatureStore
from ..streaming import StreamMatch, StreamMonitor
from ..telemetry.events import NULL_EVENT_LOG, EventLog, json_safe
from ..telemetry.registry import NULL_REGISTRY, MetricsRegistry
from ..telemetry.trace import QueryTrace, TraceRing, trace_scope
from .batching import MicroBatcher, QueryRequest
from .config import WorkspaceConfig

MANIFEST_NAME = "workspace.json"
STORE_NAME = "store.npz"
INDEX_DIR_NAME = "index"
EVENTS_NAME = "events.jsonl"
SLOW_QUERIES_NAME = "slow_queries.jsonl"
FORMAT_NAME = "repro-workspace"
FORMAT_VERSION = 1
FLIGHT_RECORD_FORMAT = "repro-flight-record"
FLIGHT_RECORD_VERSION = 1

_MODES = ("auto", "exact", "indexed")

#: The versioned wire schema emitted by :meth:`WorkspaceQueryResult.to_dict`
#: and consumed by :meth:`WorkspaceQueryResult.from_dict` — the one
#: serialization shared by the HTTP server (``repro serve``), the remote
#: client (:class:`repro.server.RemoteWorkspace`) and the CLI
#: (``workspace query --format json``).  Bump ``WIRE_VERSION`` on any
#: incompatible change; readers reject payloads newer than they are.
WIRE_FORMAT = "repro-query-result"
WIRE_VERSION = 1


@dataclass(frozen=True)
class WorkspaceQueryResult:
    """Unified result of one :meth:`Workspace.query` call.

    Attributes
    ----------
    hits:
        The k nearest stored series (identifier, stored index, distance,
        label), ordered by distance.
    mode:
        The mode that actually ran: ``"exact"`` or ``"indexed"``.
    requested_mode:
        The mode the caller asked for (``"auto"`` resolves to one of the
        above).
    k:
        Neighbours requested.
    collection_size:
        Stored series in the snapshot that served the query.
    candidates_generated:
        Candidates the index handed to the exact re-rank (equals
        ``collection_size`` in exact mode) — together with
        :attr:`scan_fraction` this is the recall-estimate metadata: an
        indexed query is exact *within* its candidate set, so the scanned
        fraction bounds how much of the exhaustive ranking it can miss.
    generation_seconds:
        Stage-1 wall-clock (candidate generation; zero in exact mode).
    rerank_seconds:
        Stage-2 wall-clock (the engine cascade).
    stats:
        Per-stage engine work accounting (bounds computed, candidates
        pruned, cells filled, phase seconds).
    queue_wait_seconds:
        Enqueue→execute wait this query spent in the micro-batcher
        (0.0 for unbatched and indexed queries), recorded so batched and
        unbatched breakdowns stay comparable.
    trace:
        Structured per-stage :class:`~repro.telemetry.QueryTrace`
        (``None`` when ``ServingConfig.telemetry`` is off).  Stage
        seconds sum exactly to the trace's measured end-to-end wall
        time; the same trace is retained in the workspace's recent-trace
        ring.
    snapshot_version:
        Monotonic version of the serving snapshot that answered the
        query (0 when unknown, e.g. results deserialized from an old
        wire payload).  A client seeing the number move knows a
        mutation was folded in between two reads.
    shard_versions:
        Per-shard ``(shard_name, snapshot_version)`` pairs when the
        query was scatter-gathered across a
        :class:`~repro.server.ShardedWorkspace`; ``None`` for
        single-workspace queries.
    failed_shards:
        Shards that failed to answer a degraded (partial) scatter-gather
        read; empty for complete results.
    """

    hits: Tuple[EngineHit, ...]
    mode: str
    requested_mode: str
    k: int
    collection_size: int
    candidates_generated: int
    generation_seconds: float
    rerank_seconds: float
    stats: EngineStats
    queue_wait_seconds: float = 0.0
    trace: Optional[QueryTrace] = None
    snapshot_version: int = 0
    shard_versions: Optional[Tuple[Tuple[str, int], ...]] = None
    failed_shards: Tuple[str, ...] = ()

    @property
    def ids(self) -> Tuple[str, ...]:
        """Identifiers of the hits, in rank order."""
        return tuple(hit.identifier for hit in self.hits)

    @property
    def indices(self) -> Tuple[int, ...]:
        """Stored positions of the hits, in rank order."""
        return tuple(hit.index for hit in self.hits)

    @property
    def distances(self) -> Tuple[float, ...]:
        """Distances of the hits, in rank order."""
        return tuple(hit.distance for hit in self.hits)

    @property
    def labels(self) -> List[Optional[int]]:
        """Labels of the hits, in rank order."""
        return [hit.label for hit in self.hits]

    @property
    def elapsed_seconds(self) -> float:
        return self.generation_seconds + self.rerank_seconds

    @property
    def scan_fraction(self) -> float:
        """Fraction of the collection the exact cascade considered."""
        if self.collection_size == 0:
            return 1.0
        return self.candidates_generated / float(self.collection_size)

    def timings(self) -> Dict[str, float]:
        """Per-stage wall-clock breakdown of the query.

        ``queue_wait_seconds`` is the micro-batcher's enqueue→execute
        delay (0.0 when batching is off), reported as its own stage so a
        batched query's breakdown is comparable with an unbatched one.
        """
        return {
            "queue_wait_seconds": self.queue_wait_seconds,
            "generation_seconds": self.generation_seconds,
            "bound_seconds": self.stats.bound_seconds,
            "extract_seconds": self.stats.extract_seconds,
            "matching_seconds": self.stats.matching_seconds,
            "dp_seconds": self.stats.dp_seconds,
            "rerank_seconds": self.rerank_seconds,
            "elapsed_seconds": self.elapsed_seconds,
        }

    # ------------------------------------------------------------------ #
    # Wire schema (format "repro-query-result")
    # ------------------------------------------------------------------ #
    def to_dict(self, *, include_trace: bool = True) -> Dict[str, object]:
        """The versioned wire representation of this result.

        The payload round-trips through ``json.dumps``/``loads`` and
        :meth:`from_dict` bit-identically: identifiers, indices,
        distances and labels come back exactly (Python's JSON float
        serialization is shortest-round-trip), raw timings and the
        engine's work accounting are carried verbatim, and derived
        quantities (``elapsed_seconds``, prune rates) are recomputed by
        the reader rather than trusted from the wire.  ``include_trace=
        False`` strips the (comparatively bulky) trace attachment; the
        HTTP server maps ``?trace=0/1`` onto it.
        """
        hits = [
            {
                "identifier": hit.identifier,
                "index": hit.index,
                "distance": hit.distance,
                "label": hit.label,
            }
            for hit in self.hits
        ]
        shard_versions: Optional[List[List[object]]] = None
        if self.shard_versions is not None:
            shard_versions = [
                [name, version] for name, version in self.shard_versions
            ]
        trace = self.trace if include_trace else None
        return {
            "format": WIRE_FORMAT,
            "version": WIRE_VERSION,
            "mode": self.mode,
            "requested_mode": self.requested_mode,
            "k": self.k,
            "collection_size": self.collection_size,
            "candidates_generated": self.candidates_generated,
            "snapshot_version": self.snapshot_version,
            "shard_versions": shard_versions,
            "failed_shards": list(self.failed_shards),
            "hits": hits,
            "timings": {
                "queue_wait_seconds": self.queue_wait_seconds,
                "generation_seconds": self.generation_seconds,
                "rerank_seconds": self.rerank_seconds,
                "elapsed_seconds": self.elapsed_seconds,
            },
            "stats": self.stats.to_dict(),
            "trace": None if trace is None else trace.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WorkspaceQueryResult":
        """Rebuild a result from its :meth:`to_dict` wire payload.

        Rejects payloads that are not ``repro-query-result`` documents
        or that were written by a newer wire version than this reader
        supports (unknown *extra* keys within the supported version are
        ignored, so additive evolution does not break old clients).
        """
        if not isinstance(payload, dict):
            raise ValidationError(
                f"query-result payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        if payload.get("format") != WIRE_FORMAT:
            raise ValidationError(
                f"payload format {payload.get('format')!r} is not "
                f"{WIRE_FORMAT!r}"
            )
        version = int(payload.get("version", 0))
        if version > WIRE_VERSION:
            raise ValidationError(
                f"query-result wire version {version} is newer than this "
                f"reader (supports <= {WIRE_VERSION})"
            )
        timings = payload.get("timings") or {}
        if not isinstance(timings, dict):
            raise ValidationError("'timings' must be a JSON object")
        raw_hits = payload.get("hits")
        if not isinstance(raw_hits, list):
            raise ValidationError("'hits' must be a JSON array")
        hits = tuple(
            EngineHit(
                identifier=str(entry["identifier"]),
                index=int(entry["index"]),
                distance=float(entry["distance"]),
                label=(
                    None if entry.get("label") is None
                    else int(entry["label"])
                ),
            )
            for entry in raw_hits
        )
        raw_shards = payload.get("shard_versions")
        shard_versions: Optional[Tuple[Tuple[str, int], ...]] = None
        if raw_shards is not None:
            shard_versions = tuple(
                (str(name), int(version)) for name, version in raw_shards
            )
        trace_payload = payload.get("trace")
        try:
            return cls(
                hits=hits,
                mode=str(payload["mode"]),
                requested_mode=str(payload.get("requested_mode",
                                               payload["mode"])),
                k=int(payload["k"]),
                collection_size=int(payload["collection_size"]),
                candidates_generated=int(
                    payload.get("candidates_generated", 0)
                ),
                generation_seconds=float(
                    timings.get("generation_seconds", 0.0)
                ),
                rerank_seconds=float(timings.get("rerank_seconds", 0.0)),
                stats=EngineStats.from_dict(payload.get("stats") or {}),
                queue_wait_seconds=float(
                    timings.get("queue_wait_seconds", 0.0)
                ),
                trace=(
                    None if trace_payload is None
                    else QueryTrace.from_dict(trace_payload)
                ),
                snapshot_version=int(payload.get("snapshot_version", 0)),
                shard_versions=shard_versions,
                failed_shards=tuple(
                    str(name) for name in payload.get("failed_shards") or ()
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed query-result payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class _Snapshot:
    """An immutable serving state: prepared engine + optional searcher.

    ``size`` counts *live* series (tombstoned engine slots excluded);
    ``engine_to_live`` maps engine slots to live ranks (``None`` when
    they coincide, i.e. the engine has no tombstones) — hit indices are
    remapped through it so callers always see positions into the live
    roster, whichever snapshot lineage served them.  ``index_generation``
    records which index slot-numbering epoch the searcher's slot mapping
    was built against, so a derived snapshot knows whether it may extend
    the mapping in place of rebuilding it.
    """

    engine: DistanceEngine
    searcher: Optional[IndexedSearcher]
    size: int
    engine_to_live: Optional[np.ndarray] = None
    index_generation: Optional[int] = None
    #: Monotonic per-workspace publish counter, stamped at publish time
    #: (``dataclasses.replace`` builds the stamped instance — the
    #: snapshot itself stays immutable).  Serving responses carry it so
    #: network clients can observe snapshot turnover.
    version: int = 0


@dataclass
class _PersistedIndex:
    """The index layers kept across snapshot rebuilds.

    ``slots`` names the identifier behind every index slot (live *and*
    tombstoned, in slot order); incremental updates never mutate an
    existing instance — they swap in a fresh one built around a cloned
    :class:`InvertedIndex`, so serving snapshots keep reading an
    immutable shard set.  ``generation`` changes whenever slot numbering
    changes (full rebuilds and compactions); within one generation slots
    are append-only, which is what lets derived snapshots extend the
    previous slot mapping instead of recomputing it.
    """

    index: object  # InvertedIndex
    codebook: object  # Codebook
    slots: List[str] = field(default_factory=list)
    pq: object = None  # Optional[ResidualPQ]
    stale: bool = False
    generation: int = 0


class Workspace:
    """A stateful service facade over one collection of time series.

    Construct through :meth:`create` (new directory), :meth:`open`
    (existing directory) or ``Workspace()`` / :meth:`in_memory`
    (ephemeral, nothing persisted).

    Observability: each workspace owns a
    :class:`~repro.telemetry.MetricsRegistry` (see :mod:`repro.telemetry`)
    aggregating query latency, cascade prune rates, cache hit rates and
    write-path activity, exported via :meth:`metrics_to_dict` /
    :meth:`metrics_prometheus`; every query additionally carries a
    per-stage :class:`~repro.telemetry.QueryTrace` on its result and in
    the :meth:`recent_traces` ring.  ``ServingConfig.telemetry`` turns
    all of it off at near-zero cost.

    Parameters
    ----------
    config:
        The declarative :class:`~repro.service.config.WorkspaceConfig`;
        defaults apply when omitted.
    """

    def __init__(self, config: Optional[WorkspaceConfig] = None) -> None:
        self.path: Optional[str] = None
        self.config = config if config is not None else WorkspaceConfig()
        self._lock = threading.RLock()
        self._store = FeatureStore(config=self.config.sdtw)
        self._identifiers: List[str] = []
        self._labels: List[Optional[int]] = []
        self._index: Optional[_PersistedIndex] = None
        self._serving: Optional[_Snapshot] = None
        # Snapshot-derivation state: the last snapshot that served (kept
        # as the derivation base after ``_serving`` is invalidated) and
        # the mutation log accumulated since it was built.
        self._previous: Optional[_Snapshot] = None
        self._pending: List[Tuple[str, str]] = []
        self._snapshot_version = 0
        self._monitor: Optional[StreamMonitor] = None
        self._pairwise: Optional[SDTW] = None
        self._dirty = False
        self._closed = False
        # Telemetry: one registry per workspace, decided once here — the
        # null registry makes every instrumented path a no-op when
        # telemetry is off (see repro.telemetry).
        self._metrics: MetricsRegistry = (
            MetricsRegistry() if self.config.serving.telemetry else NULL_REGISTRY
        )
        self._traces = TraceRing(self.config.serving.trace_ring)
        # The structured event log follows the same master switch: every
        # state transition (mutations, snapshot derivations, compactions,
        # batcher failures) emits one event; queries emit none.
        self._events: EventLog = (
            EventLog(
                self.config.serving.event_log_ring,
                max_bytes=self.config.serving.event_log_max_bytes,
            )
            if self.config.serving.telemetry
            else NULL_EVENT_LOG
        )
        # Slow-query capture: records ring + (path-backed) JSONL sink,
        # armed by ServingConfig.slow_query_threshold.
        self._slow_queries: deque = deque(
            maxlen=self.config.serving.slow_query_ring
        )
        self._slow_lock = threading.Lock()
        self._slow_path: Optional[str] = None
        self._slow_query_drops = 0
        self._register_metrics()
        self._batcher: Optional[MicroBatcher] = None
        if self.config.serving.micro_batch:
            self._batcher = MicroBatcher(
                self._run_exact_batch,
                window_seconds=self.config.serving.batch_window_ms / 1000.0,
                max_batch=self.config.serving.max_batch,
                metrics=self._metrics,
                events=self._events,
            )

    def _register_metrics(self) -> None:
        """Pre-register the metric catalogue and bind hot-path handles.

        Families are created up front so an export is never empty (every
        documented series renders, at zero, before the first query); hot
        paths then update pre-bound children instead of doing registry
        lookups.  With telemetry off every handle is the shared no-op
        child of :data:`~repro.telemetry.NULL_REGISTRY`.
        """
        m = self._metrics
        self._m_queries = m.counter(
            "repro_queries_total", "Queries served, by executed mode.",
            labels=("mode",),
        )
        self._m_query_seconds = m.histogram(
            "repro_query_seconds",
            "End-to-end query wall time, by executed mode.",
            labels=("mode",),
        )
        self._m_stage_seconds = m.histogram(
            "repro_query_stage_seconds",
            "Per-stage query wall time (cascade + candidate generation).",
            labels=("stage",),
        )
        self._m_candidates = m.counter(
            "repro_cascade_candidates_total",
            "Candidate pairs entering the exact cascade.",
        )
        self._m_pruned = m.counter(
            "repro_cascade_pruned_total",
            "Candidates eliminated by each lower-bound stage.",
            labels=("stage",),
        )
        self._m_dtw = m.counter(
            "repro_cascade_dtw_total",
            "DTW refinements by outcome (completed / abandoned early).",
            labels=("outcome",),
        )
        self._m_cells_filled = m.counter(
            "repro_cascade_cells_filled_total",
            "DTW grid cells actually evaluated.",
        )
        self._m_cells_total = m.counter(
            "repro_cascade_cells_total",
            "DTW grid cells a full scan would have evaluated.",
        )
        self._m_snapshots = m.counter(
            "repro_snapshots_total",
            "Serving snapshots by construction kind (derived / rebuilt).",
            labels=("kind",),
        )
        self._m_mutations = m.counter(
            "repro_mutations_total", "Workspace mutations by operation.",
            labels=("op",),
        )
        self._m_slow_queries = m.counter(
            "repro_slow_queries_total",
            "Queries at or above ServingConfig.slow_query_threshold, "
            "captured into the slow-query log.",
        )
        self._m_events = m.gauge(
            "repro_events_total",
            "Structured events emitted over the workspace's lifetime.",
        )
        self._m_index_updates = m.counter(
            "repro_index_updates_total",
            "Index maintenance events by kind (incremental_add, tombstone, "
            "auto_compaction, compaction, rebuild).",
            labels=("kind",),
        )
        self._g_pending = m.gauge(
            "repro_pending_mutations",
            "Mutations logged since the last serving snapshot.",
        )
        self._g_series_live = m.gauge(
            "repro_series_live", "Live series in the workspace roster."
        )
        self._g_segments = m.gauge(
            "repro_snapshot_segments",
            "Prepared segments of the serving engine snapshot.",
        )
        self._g_dead_fraction = m.gauge(
            "repro_snapshot_dead_fraction",
            "Tombstoned fraction of the serving engine's slots.",
        )
        self._g_delta_shards = m.gauge(
            "repro_index_delta_shards", "Delta shards awaiting compaction."
        )
        self._g_tombstones = m.gauge(
            "repro_index_tombstones", "Tombstoned index slots."
        )
        self._g_postings_hits = m.gauge(
            "repro_postings_cache_hits",
            "Lifetime postings-page cache hits across index shards.",
        )
        self._g_postings_misses = m.gauge(
            "repro_postings_cache_misses",
            "Lifetime postings-page cache misses across index shards.",
        )
        # Created here so exports always include them; the searcher binds
        # its own children per serving snapshot.
        m.counter(
            "repro_candidate_cache_requests_total",
            "Stage-1 candidate-set cache lookups by outcome.",
            labels=("outcome",),
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def in_memory(cls, config: Optional[WorkspaceConfig] = None) -> "Workspace":
        """An ephemeral workspace (no directory, nothing persisted)."""
        return cls(config)

    @classmethod
    def create(
        cls,
        path: Union[str, os.PathLike],
        config: Optional[WorkspaceConfig] = None,
        *,
        overwrite: bool = False,
    ) -> "Workspace":
        """Create a new workspace directory and write its manifest.

        Refuses to reuse a directory that already holds a workspace
        unless ``overwrite=True``.
        """
        path = os.fspath(path)
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if os.path.exists(manifest_path) and not overwrite:
            raise WorkspaceError(
                f"a workspace already exists at {path!r}; open it with "
                f"Workspace.open() or pass overwrite=True"
            )
        workspace = cls(config)
        workspace.path = path
        os.makedirs(path, exist_ok=True)
        workspace._attach_diagnostics_sinks()
        workspace.save()
        workspace._events.emit("workspace", "created", path=path)
        return workspace

    @classmethod
    def open(cls, path: Union[str, os.PathLike]) -> "Workspace":
        """Reopen a workspace directory written by :meth:`create` / :meth:`save`."""
        path = os.fspath(path)
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise WorkspaceError(f"no workspace manifest found at {manifest_path}")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != FORMAT_NAME:
            raise WorkspaceError(f"{manifest_path} is not a {FORMAT_NAME} manifest")
        if int(manifest.get("version", 0)) > FORMAT_VERSION:
            raise WorkspaceError(
                f"workspace format version {manifest.get('version')} is newer "
                f"than this reader (supports <= {FORMAT_VERSION})"
            )
        config = WorkspaceConfig.from_dict(manifest.get("config", {}))
        workspace = cls(config)
        workspace.path = path

        store_file = manifest.get("store_file")
        if store_file:
            workspace._store = FeatureStore.load(
                os.path.join(path, str(store_file)), config=config.sdtw
            )
        for entry in manifest.get("series", []):
            identifier = str(entry["identifier"])
            if store_file and identifier not in workspace._store:
                raise WorkspaceError(
                    f"workspace manifest lists series {identifier!r} but the "
                    f"feature store does not contain it"
                )
            workspace._identifiers.append(identifier)
            label = entry.get("label")
            workspace._labels.append(None if label is None else int(label))

        index_dir = manifest.get("index_dir")
        if index_dir:
            reader = IndexReader.open(
                os.path.join(path, str(index_dir)), mmap=config.index.mmap
            )
            if reader.live_identifiers() != workspace._identifiers:
                raise WorkspaceError(
                    "the persisted index covers a different series roster than "
                    "the workspace manifest; rebuild the index"
                )
            workspace._index = _PersistedIndex(
                index=reader.index,
                codebook=reader.codebook,
                slots=list(reader.identifiers),
                pq=reader.pq,
            )
        workspace._attach_diagnostics_sinks()
        workspace._events.emit(
            "workspace", "opened",
            path=path,
            num_series=len(workspace._identifiers),
            has_index=workspace._index is not None,
        )
        return workspace

    def _attach_diagnostics_sinks(self) -> None:
        """Point the event log and slow-query log at the workspace dir.

        Called once the path is known (create/open); in-memory
        workspaces keep ring-only diagnostics.
        """
        if self.path is None:
            return
        if self._events.enabled and self.config.serving.event_log_file:
            self._events.attach_file(os.path.join(self.path, EVENTS_NAME))
        if self.config.serving.slow_query_threshold is not None:
            self._slow_path = os.path.join(self.path, SLOW_QUERIES_NAME)

    # ------------------------------------------------------------------ #
    # Context manager / lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Persist pending mutations (path-backed workspaces) and close."""
        with self._lock:
            if self._closed:
                return
            if self._dirty and self.path is not None:
                self.save()
            self._closed = True
            self._serving = None
            self._previous = None
            self._pending.clear()
            self._events.emit("workspace", "closed", path=self.path)

    def _require_open(self) -> None:
        if self._closed:
            raise self._error("this workspace has been closed")

    def _error(self, message: str) -> WorkspaceError:
        """A :class:`WorkspaceError` with the flight record attached.

        Every operational failure the workspace raises carries the
        recent diagnostic state (events, traces, metrics, config) on
        ``exc.flight_record``, so the context that preceded the error
        survives into the caller's handler without a second round trip.
        The capture itself is best-effort: diagnostics must never turn
        one failure into two.
        """
        self._events.emit("workspace", "error", level="error", message=message)
        error = WorkspaceError(message)
        try:
            error.flight_record = self.dump_flight_record(note=message)
        except Exception:  # noqa: BLE001 - diagnostics are best-effort
            error.flight_record = None
        return error

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._identifiers)

    @property
    def identifiers(self) -> List[str]:
        """Stored identifiers in insertion order."""
        return list(self._identifiers)

    @property
    def labels(self) -> List[Optional[int]]:
        """Stored labels in insertion order."""
        return list(self._labels)

    @property
    def has_index(self) -> bool:
        """Whether a fresh (non-stale) index is available."""
        return self._index is not None and not self._index.stale

    @property
    def engine(self) -> DistanceEngine:
        """The serving :class:`DistanceEngine` (built lazily)."""
        return self._ensure_serving().engine

    @property
    def searcher(self) -> Optional[IndexedSearcher]:
        """The serving :class:`IndexedSearcher`, or ``None`` without an index."""
        return self._ensure_serving().searcher

    @property
    def monitor(self) -> StreamMonitor:
        """The embedded :class:`StreamMonitor` (created on first use)."""
        with self._lock:
            self._require_open()
            if self._monitor is None:
                self._monitor = StreamMonitor(
                    self.config.sdtw,
                    prune=self.config.engine.prune,
                    early_abandon=self.config.engine.early_abandon,
                )
            return self._monitor

    def series_of(self, identifier: str) -> np.ndarray:
        """The stored values of one series."""
        return self._store.series_of(identifier)

    def stats(self) -> Dict[str, object]:
        """A summary of the workspace state (used by ``repro workspace stats``)."""
        lengths = [self._store.series_of(i).size for i in self._identifiers]
        index_info: Optional[Dict[str, object]] = None
        if self._index is not None:
            index = self._index.index
            index_info = {
                "num_postings": int(index.num_postings),
                "num_codewords": int(index.num_codewords),
                "stale": bool(self._index.stale),
                "num_slots": int(index.num_series),
                "num_live": int(index.num_live),
                "delta_shards": int(index.num_delta_shards),
                "tombstones": int(index.num_tombstones),
                "rank_mode": self._effective_rank_mode(),
                "pq_compression_ratio": (
                    None if self._index.pq is None
                    else float(self._index.pq.compression_ratio)
                ),
            }
        serving = self._serving
        return {
            "path": self.path,
            "num_series": len(self._identifiers),
            "identifiers": list(self._identifiers),
            "snapshot_version": 0 if serving is None else serving.version,
            "min_length": min(lengths) if lengths else 0,
            "max_length": max(lengths) if lengths else 0,
            "constraint": self.config.engine.constraint,
            "backend": self.config.engine.backend,
            "micro_batch": self.config.serving.micro_batch,
            "telemetry": self._metrics.enabled,
            "events_total": int(self._events.events_total),
            "slow_queries": len(self._slow_queries),
            "slow_query_threshold": self.config.serving.slow_query_threshold,
            "index": index_info,
        }

    # ------------------------------------------------------------------ #
    # Telemetry export
    # ------------------------------------------------------------------ #
    @property
    def metrics(self) -> MetricsRegistry:
        """The workspace's metrics registry (the no-op null registry when
        ``config.serving.telemetry`` is off)."""
        return self._metrics

    def _refresh_state_gauges(self) -> None:
        """Bring point-in-time gauges up to date before an export.

        Counters and histograms accumulate on the hot paths; gauges that
        mirror current state (live series, segment counts, dead
        fraction, cache tallies) are cheaper to read once per export
        than to maintain on every mutation.
        """
        if not self._metrics.enabled:
            return
        self._g_series_live.set(len(self._identifiers))
        self._g_pending.set(len(self._pending))
        self._m_events.set(self._events.events_total)
        snapshot = self._serving
        if snapshot is not None:
            prepared = snapshot.engine._prepared
            self._g_segments.set(
                len(prepared.segments) if prepared is not None else 0
            )
            total = len(snapshot.engine)
            self._g_dead_fraction.set(
                (total - snapshot.engine.num_live) / total if total else 0.0
            )
        if self._index is not None:
            index = self._index.index
            self._g_delta_shards.set(index.num_delta_shards)
            self._g_tombstones.set(index.num_tombstones)
            cache_stats = index.postings_cache_stats()
            self._g_postings_hits.set(cache_stats["hits"])
            self._g_postings_misses.set(cache_stats["misses"])

    def metrics_to_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot of every metric (gauges refreshed)."""
        self._refresh_state_gauges()
        return self._metrics.to_dict()

    def metrics_prometheus(self) -> str:
        """Prometheus text-exposition rendering (gauges refreshed)."""
        self._refresh_state_gauges()
        return self._metrics.render_prometheus()

    def recent_traces(self) -> List[Dict[str, object]]:
        """The retained ring of recent query traces, oldest first."""
        return [trace.to_dict() for trace in self._traces.snapshot()]

    @property
    def events(self) -> EventLog:
        """The workspace's structured event log (the no-op null log
        when ``config.serving.telemetry`` is off)."""
        return self._events

    def recent_events(
        self,
        *,
        limit: Optional[int] = None,
        component: Optional[str] = None,
        level: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """The retained event ring, oldest first, optionally filtered."""
        return self._events.to_dicts(
            limit=limit, component=component, level=level
        )

    def slow_queries(self) -> List[Dict[str, object]]:
        """Slow-query records retained in memory, oldest first.

        Path-backed workspaces additionally persist every record to
        ``slow_queries.jsonl``; this accessor is the surface for
        in-memory workspaces and tests.
        """
        with self._slow_lock:
            return [dict(record) for record in self._slow_queries]

    def dump_flight_record(
        self, *, note: Optional[str] = None, events: int = 200
    ) -> Dict[str, object]:
        """One JSON-safe bundle of everything an operator needs post hoc.

        Combines the recent event ring, the trace ring, retained
        slow-query records, a full metrics snapshot and the workspace
        configuration — "what happened in the last N seconds before
        this" in a single blob.  Attached automatically to every
        :class:`WorkspaceError` the workspace raises and dumpable via
        ``repro workspace flight-record``.  Works on closed workspaces
        (it only reads retained state) and round-trips through
        ``json.dumps``/``loads`` unchanged.
        """
        with self._slow_lock:
            slow = [dict(record) for record in self._slow_queries]
        record = {
            "format": FLIGHT_RECORD_FORMAT,
            "version": FLIGHT_RECORD_VERSION,
            "captured_at": manifest_timestamp(),
            "note": note,
            "workspace": {
                "path": self.path,
                "closed": self._closed,
                "format_version": FORMAT_VERSION,
                "num_series": len(self._identifiers),
                "pending_mutations": len(self._pending),
                "has_index": self.has_index,
                "events_total": self._events.events_total,
                "event_log_path": self._events.path,
                "slow_query_log_path": self._slow_path,
                "slow_query_drops": self._slow_query_drops,
            },
            "config": self.config.to_dict(),
            "events": self._events.to_dicts(limit=events),
            "traces": self.recent_traces(),
            "slow_queries": slow,
            "metrics": self.metrics_to_dict(),
        }
        return json_safe(record)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(
        self,
        values: Union[Sequence[float], np.ndarray],
        identifier: Optional[str] = None,
        label: Optional[int] = None,
    ) -> str:
        """Add one series to the workspace.

        Identifiers must be unique (the on-disk layout is keyed by
        identifier); auto-generated names skip taken ones.  Salient
        features are extracted lazily — at :meth:`build_index` /
        :meth:`save` time, or when an adaptive constraint's serving
        snapshot needs them — so purely fixed-band workloads never pay
        for extraction.

        With ``config.index.incremental`` (the default) an existing
        fresh index stays fresh: the new series' features are extracted,
        quantized against the frozen codebook (and PQ codec) and
        appended as one delta shard — O(new features) instead of a full
        rebuild, and ``auto`` queries keep using the indexed path.
        With ``incremental=False`` adding marks the index stale and
        ``auto`` queries fall back to the exact scan until
        :meth:`build_index` runs again.
        """
        with self._lock:
            self._require_open()
            array = as_series(values, "values")
            if identifier is None:
                counter = len(self._identifiers)
                taken = set(self._identifiers)
                identifier = f"series-{counter:05d}"
                while identifier in taken:
                    counter += 1
                    identifier = f"series-{counter:05d}"
            else:
                identifier = str(identifier)
                if identifier in self._store:
                    raise ValidationError(
                        f"identifier {identifier!r} is already stored in this "
                        f"workspace"
                    )
            self._store.add_series(identifier, array, extract=False)
            self._identifiers.append(identifier)
            self._labels.append(label)
            index_updated = self._index_add(identifier, array)
            self._invalidate(
                index_updated=index_updated,
                op=("add", identifier),
            )
            self._m_mutations.labels(op="add").inc()
            self._events.emit(
                "workspace", "series_added",
                identifier=identifier,
                length=int(array.size),
                index_updated=index_updated,
                num_series=len(self._identifiers),
            )
            return identifier

    def _index_add(self, identifier: str, array: np.ndarray) -> bool:
        """Incrementally index one just-stored series (caller holds the lock).

        Returns ``True`` when the index absorbed the series (it stays
        fresh), ``False`` when the caller must mark it stale instead.
        Updates go through a clone of the inverted index, so serving
        snapshots taken before this mutation keep reading an immutable
        shard set.
        """
        persisted = self._index
        if (
            persisted is None
            or persisted.stale
            or not self.config.index.incremental
            or not persisted.index.supports_incremental
        ):
            return False
        features = self._store.ensure_features(identifier)
        codebook = persisted.codebook
        bag = codebook.bag(features, array.size)
        pq_entry = None
        if persisted.pq is not None:
            pq_entry = pq_entry_for(codebook, persisted.pq, features, array.size)
        updated = persisted.index.clone()
        updated.add_series(bag, pq_entry)
        slots = persisted.slots + [identifier]
        generation = persisted.generation
        self._m_index_updates.labels(kind="incremental_add").inc()
        self._events.emit(
            "index", "delta_appended",
            identifier=identifier,
            delta_shards=int(updated.num_delta_shards),
            num_slots=int(updated.num_series),
        )
        self._events.emit(
            "cache", "candidate_cache_invalidated", level="debug",
            reason="incremental_add",
        )
        if updated.num_delta_shards > self.config.index.max_delta_shards:
            updated, slot_map = updated.compact(
                num_shards=self.config.index.num_shards
            )
            slots = [name for slot, name in enumerate(slots) if slot_map[slot] >= 0]
            generation += 1  # compaction renumbers slots
            self._m_index_updates.labels(kind="auto_compaction").inc()
            self._events.emit(
                "index", "auto_compaction",
                live=int(updated.num_live),
                generation=generation,
                max_delta_shards=self.config.index.max_delta_shards,
            )
        self._index = _PersistedIndex(
            index=updated,
            codebook=codebook,
            slots=slots,
            pq=persisted.pq,
            generation=generation,
        )
        return True

    def remove(self, identifier: str) -> None:
        """Remove one stored series from the workspace.

        With ``config.index.incremental`` a fresh index stays fresh: the
        series' slot is tombstoned (its postings are skipped by every
        query and dropped physically at the next compaction).  Without
        incremental maintenance the index goes stale.
        """
        with self._lock:
            self._require_open()
            identifier = str(identifier)
            if identifier not in self._store:
                raise DatasetError(
                    f"no series stored under identifier {identifier!r}"
                )
            position = self._identifiers.index(identifier)
            del self._identifiers[position]
            del self._labels[position]
            self._store.remove_series(identifier)
            index_updated = self._index_remove(identifier)
            self._invalidate(
                index_updated=index_updated,
                op=("remove", identifier),
            )
            self._m_mutations.labels(op="remove").inc()
            self._events.emit(
                "workspace", "series_removed",
                identifier=identifier,
                index_updated=index_updated,
                num_series=len(self._identifiers),
            )

    def _index_remove(self, identifier: str) -> bool:
        """Tombstone one series' index slot (caller holds the lock)."""
        persisted = self._index
        if (
            persisted is None
            or persisted.stale
            or not self.config.index.incremental
        ):
            return False
        slot = None
        for candidate, name in enumerate(persisted.slots):
            if name == identifier and not persisted.index.tombstones[candidate]:
                slot = candidate
                break
        if slot is None:
            return False
        updated = persisted.index.clone()
        updated.remove_series(slot)
        self._index = _PersistedIndex(
            index=updated,
            codebook=persisted.codebook,
            slots=list(persisted.slots),
            pq=persisted.pq,
            generation=persisted.generation,  # tombstones keep slot numbers
        )
        self._m_index_updates.labels(kind="tombstone").inc()
        self._events.emit(
            "index", "tombstone",
            identifier=identifier,
            slot=slot,
            tombstones=int(updated.num_tombstones),
        )
        return True

    def add_batch(
        self,
        series: Sequence[Union[Sequence[float], np.ndarray]],
        identifiers: Optional[Sequence[str]] = None,
        labels: Optional[Sequence[Optional[int]]] = None,
    ) -> List[str]:
        """Add many series atomically; returns their identifiers.

        The whole batch is validated before the first series is stored,
        so a duplicate identifier (against the workspace or within the
        batch) leaves the workspace unchanged.
        """
        if identifiers is not None and len(identifiers) != len(series):
            raise ValidationError("identifiers must have one entry per series")
        if labels is not None and len(labels) != len(series):
            raise ValidationError("labels must have one entry per series")
        with self._lock:
            self._require_open()
            if identifiers is not None:
                explicit = [str(identifier) for identifier in identifiers]
                seen = set()
                for identifier in explicit:
                    if identifier in self._store or identifier in seen:
                        raise ValidationError(
                            f"identifier {identifier!r} is already stored in "
                            f"this workspace (or repeated within the batch); "
                            f"nothing was added"
                        )
                    seen.add(identifier)
            return [
                self.add(
                    values,
                    identifier=None if identifiers is None else identifiers[i],
                    label=None if labels is None else labels[i],
                )
                for i, values in enumerate(series)
            ]

    def add_dataset(self, dataset: Dataset) -> List[str]:
        """Add every series of a data set (labels preserved)."""
        identifiers = [
            ts.identifier or f"{dataset.name}-{i:04d}"
            for i, ts in enumerate(dataset)
        ]
        return self.add_batch(dataset.values_list(), identifiers, dataset.labels)

    def _invalidate(
        self,
        *,
        index_updated: bool = False,
        op: Optional[Tuple[str, str]] = None,
    ) -> None:
        """Mark serving state stale after a mutation (caller holds the lock).

        ``index_updated=True`` means the mutation already refreshed the
        index incrementally, so only the serving snapshot needs a
        rebuild; otherwise any existing index goes stale.  ``op`` (an
        ``("add"|"remove", identifier)`` pair) is appended to the
        mutation log, letting the next query *derive* its snapshot from
        the previous one — shared prepared segments, an appended segment
        for new series, tombstones for removals — instead of rebuilding
        the engine from scratch.
        """
        if self._serving is not None:
            self._previous = self._serving
        self._serving = None
        if op is not None:
            self._pending.append(op)
        self._g_pending.set(len(self._pending))
        self._dirty = True
        if not index_updated and self._index is not None:
            if not self._index.stale:
                self._events.emit(
                    "index", "marked_stale", level="warn",
                    op=None if op is None else op[0],
                )
            self._index.stale = True

    # ------------------------------------------------------------------ #
    # Serving snapshot
    # ------------------------------------------------------------------ #
    def _ensure_serving(self) -> _Snapshot:
        snapshot = self._serving
        if snapshot is not None:
            return snapshot
        with self._lock:
            self._require_open()
            if self._serving is None:
                pending = len(self._pending)
                self._serving = dataclasses.replace(
                    self._next_snapshot(),
                    version=self._bump_snapshot_version(),
                )
                self._previous = None
                self._pending.clear()
                if pending:
                    self._events.emit(
                        "snapshot", "pending_log_folded", level="debug",
                        mutations=pending,
                    )
            return self._serving

    def _bump_snapshot_version(self) -> int:
        """The next snapshot publish version (caller holds the lock)."""
        self._snapshot_version += 1
        return self._snapshot_version

    # Rebuild (instead of derive) once this fraction of a derived
    # engine's slots would be tombstones: queries pay for dead slots in
    # bound computation, so unbounded tombstone accumulation would slowly
    # degrade the read path.  A rebuild compacts them away.
    _MAX_DEAD_FRACTION = 0.5

    def _next_snapshot(self) -> _Snapshot:
        """The snapshot for the current roster (caller holds the lock).

        Derives from the previous snapshot when possible — O(pending
        mutations) instead of an O(N) engine rebuild — and falls back to
        :meth:`_build_snapshot` when there is no usable base (first
        query, ``incremental_snapshots=False``, or too many accumulated
        tombstones).
        """
        previous = self._previous
        if (
            not self.config.serving.incremental_snapshots
            or previous is None
            or previous.engine._prepared is None
        ):
            return self._build_snapshot()
        added, removed = self._net_pending()
        total = len(previous.engine) + len(added)
        live = len(self._identifiers)
        if total and (total - live) / total > self._MAX_DEAD_FRACTION:
            return self._build_snapshot()
        return self._derive_snapshot(previous, added, removed)

    def _net_pending(self) -> Tuple[List[str], List[str]]:
        """Collapse the mutation log into net (added, removed) identifier
        lists relative to the previous snapshot.

        Add-then-remove within one log cancels out entirely; a
        remove-then-re-add of the same identifier yields one tombstone
        plus one appended slot, which is exactly what the engine
        derivation needs (the re-added series may have different
        values).
        """
        added: List[str] = []
        removed: List[str] = []
        for op, identifier in self._pending:
            if op == "add":
                added.append(identifier)
            elif identifier in added:
                added.remove(identifier)
            else:
                removed.append(identifier)
        return added, removed

    def _derive_snapshot(
        self,
        previous: _Snapshot,
        added: List[str],
        removed: List[str],
    ) -> _Snapshot:
        """Extend the previous snapshot to the current roster.

        The engine derivation shares the previous engine's prepared
        segments and costs O(added) cache building plus O(N) small-array
        copies — never the O(N) envelope/profile recomputation of
        :meth:`_build_snapshot`.  The previous snapshot itself is never
        touched: readers holding it keep serving bit-identical results.
        """
        label_of = dict(zip(self._identifiers, self._labels))
        base_engine = previous.engine
        if base_engine._needs_alignment:
            # Seed the shared salient-feature cache for the new series
            # from the store before the engine derivation would extract
            # them from scratch.
            sdtw = base_engine._sdtw
            for identifier in added:
                features = self._store.ensure_features(identifier)
                key = sdtw._cache_key(
                    np.ascontiguousarray(
                        self._store.series_of(identifier), dtype=float
                    )
                )
                sdtw._feature_cache[key] = features
        engine = base_engine.extended(
            [
                (self._store.series_of(identifier), identifier,
                 label_of.get(identifier))
                for identifier in added
            ],
            removed_identifiers=removed,
        )
        alive = engine.alive_mask
        if alive is None or bool(alive.all()):
            engine_to_live = None
        else:
            engine_to_live = np.where(alive, np.cumsum(alive) - 1, -1)
        searcher: Optional[IndexedSearcher] = None
        generation: Optional[int] = None
        if self.has_index:
            generation = self._index.generation
            mapping = self._extend_slot_mapping(previous, engine)
            if mapping is None:
                mapping = self._slot_mapping(engine=engine)
            searcher = self._make_searcher(engine, mapping)
        self._m_snapshots.labels(kind="derived").inc()
        prepared = engine._prepared
        self._events.emit(
            "snapshot", "derived",
            added=len(added),
            removed=len(removed),
            live=int(engine.num_live),
            segments=0 if prepared is None else len(prepared.segments),
        )
        return _Snapshot(
            engine=engine,
            searcher=searcher,
            size=engine.num_live,
            engine_to_live=engine_to_live,
            index_generation=generation,
        )

    def _extend_slot_mapping(
        self, previous: _Snapshot, engine: DistanceEngine
    ) -> Optional[np.ndarray]:
        """Extend the previous snapshot's index-slot mapping in O(new).

        Valid only while the index generation is unchanged (slots are
        append-only within a generation) and the engine keeps the
        previous slot numbering (derivation never renumbers).  Returns
        ``None`` when a full rebuild is required instead.
        """
        persisted = self._index
        if (
            previous.searcher is None
            or previous.index_generation != persisted.generation
        ):
            return None
        prev_map = previous.searcher.index_to_engine
        if prev_map is None:
            # Identity mapping: index slot i served engine position i.
            prev_map = np.arange(
                int(previous.searcher.index.num_series), dtype=np.int64
            )
        if prev_map.size > len(persisted.slots):
            return None
        mapping = np.full(len(persisted.slots), -1, dtype=np.int64)
        mapping[: prev_map.size] = prev_map
        tombstones = np.asarray(persisted.index.tombstones, dtype=bool)
        for slot in range(prev_map.size, len(persisted.slots)):
            if not tombstones[slot]:
                mapping[slot] = engine.slot_of(persisted.slots[slot])
        mapping[tombstones] = -1
        return mapping

    def _make_searcher(
        self, engine: DistanceEngine, mapping: Optional[np.ndarray]
    ) -> IndexedSearcher:
        """An :class:`IndexedSearcher` over the serving index state."""
        return IndexedSearcher(
            self._index.index,
            self._index.codebook,
            engine,
            config=self.config.sdtw,
            candidate_budget=self.config.index.candidate_budget,
            pq=self._index.pq,
            rank_mode=self._effective_rank_mode(),
            index_to_engine=mapping,
            postings_cache=self.config.index.postings_cache,
            candidate_cache=self.config.index.candidate_cache,
            telemetry=self._metrics,
        )

    def _build_snapshot(self) -> _Snapshot:
        cfg = self.config.engine
        engine = DistanceEngine(
            cfg.constraint,
            self.config.sdtw,
            backend=cfg.backend,
            num_workers=cfg.num_workers,
            prune=cfg.prune,
            early_abandon=cfg.early_abandon,
            batch_size=cfg.batch_size,
            itakura_max_slope=cfg.itakura_max_slope,
        )
        for identifier, label in zip(self._identifiers, self._labels):
            engine.add(
                self._store.series_of(identifier),
                identifier=identifier,
                label=label,
            )
        # Seed the engine's salient-feature cache from the store so
        # adaptive constraints never re-extract stored series; the
        # store's features are materialised first (one-time, kept across
        # snapshot rebuilds).  Fixed-band constraints never read them.
        if engine._needs_alignment:
            self._ensure_all_features()
        self._store.warm_engine(engine._sdtw)
        if len(engine):
            engine.prepare()
        searcher: Optional[IndexedSearcher] = None
        generation: Optional[int] = None
        if self.has_index:
            generation = self._index.generation
            searcher = self._make_searcher(engine, self._slot_mapping())
        self._m_snapshots.labels(kind="rebuilt").inc()
        self._events.emit(
            "snapshot", "rebuilt",
            live=len(engine),
            indexed=searcher is not None,
        )
        return _Snapshot(
            engine=engine,
            searcher=searcher,
            size=len(engine),
            index_generation=generation,
        )

    def _effective_rank_mode(self) -> str:
        """The configured rank mode, downgraded when the index lacks codes."""
        if (
            self.config.index.rank_mode == "pq"
            and self._index is not None
            and self._index.pq is not None
            and self._index.index.has_pq
        ):
            return "pq"
        return "tfidf"

    def _slot_mapping(
        self, engine: Optional[DistanceEngine] = None
    ) -> Optional[np.ndarray]:
        """Index-slot -> engine-position mapping (``None`` when identity).

        Without *engine* the mapping targets a freshly built engine
        whose positions equal live-roster positions; with a (possibly
        derived) *engine* the mapping targets its stable slot numbering,
        tombstoned slots included.
        """
        persisted = self._index
        if persisted is None:
            return None
        if (
            engine is None
            and not persisted.index.num_tombstones
            and persisted.slots == self._identifiers
        ):
            return None
        if engine is None:
            position_of = {
                identifier: position
                for position, identifier in enumerate(self._identifiers)
            }
        else:
            alive = engine.alive_mask
            position_of = {
                stored.identifier: slot
                for slot, stored in enumerate(engine._stored)
                if alive is None or alive[slot]
            }
        mapping = np.full(len(persisted.slots), -1, dtype=np.int64)
        tombstones = persisted.index.tombstones
        for slot, identifier in enumerate(persisted.slots):
            if not tombstones[slot]:
                mapping[slot] = position_of[identifier]
        return mapping

    def _ensure_all_features(self) -> None:
        """Materialise any deferred feature extraction (caller holds the lock)."""
        for identifier in self._identifiers:
            self._store.ensure_features(identifier)

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #
    def build_index(
        self,
        *,
        num_codewords: Optional[int] = None,
        num_shards: Optional[int] = None,
        candidate_budget: Optional[int] = None,
    ) -> None:
        """(Re)build the inverted index over the current collection.

        Stored features are reused from the feature store — building the
        index never re-extracts.  Path-backed workspaces persist the
        index (and any pending mutations) immediately.
        """
        with self._lock:
            self._require_open()
            if not self._identifiers:
                raise DatasetError("cannot build an index over an empty workspace")
            cfg = self.config.index
            snapshot = self._ensure_serving()
            if snapshot.engine_to_live is not None:
                # The serving engine carries tombstoned slots; index
                # construction wants a dense engine whose positions equal
                # roster positions, so rebuild the snapshot from scratch
                # (the codebook refit below dwarfs this cost anyway).
                snapshot = dataclasses.replace(
                    self._build_snapshot(),
                    version=self._bump_snapshot_version(),
                )
                self._serving = snapshot
            self._ensure_all_features()
            codebook_config = CodebookConfig.for_sdtw(
                self.config.sdtw,
                num_codewords=cfg.num_codewords if num_codewords is None
                else num_codewords,
                seed=cfg.seed,
            )
            pq_config = None
            if cfg.pq:
                pq_config = PQConfig(
                    subquantizers=cfg.pq_subquantizers,
                    bits=cfg.pq_bits,
                    seed=cfg.seed,
                )
            searcher = IndexedSearcher.from_engine(
                snapshot.engine,
                config=self.config.sdtw,
                codebook_config=codebook_config,
                num_shards=cfg.num_shards if num_shards is None else num_shards,
                candidate_budget=(
                    cfg.candidate_budget if candidate_budget is None
                    else candidate_budget
                ),
                features=[
                    list(self._store.features_of(identifier))
                    for identifier in self._identifiers
                ],
                pq_config=pq_config,
                rank_mode=cfg.rank_mode,
                telemetry=self._metrics,
            )
            self._m_index_updates.labels(kind="rebuild").inc()
            self._events.emit(
                "index", "rebuilt",
                num_series=len(self._identifiers),
                num_codewords=int(searcher.codebook.num_codewords),
                pq=searcher.pq is not None,
            )
            self._events.emit(
                "cache", "candidate_cache_invalidated", level="debug",
                reason="rebuild",
            )
            self._index = _PersistedIndex(
                index=searcher.index,
                codebook=searcher.codebook,
                slots=list(self._identifiers),
                pq=searcher.pq,
                generation=(
                    0 if self._index is None else self._index.generation + 1
                ),
            )
            searcher.enable_caches(
                postings_cache=self.config.index.postings_cache,
                candidate_cache=self.config.index.candidate_cache,
            )
            self._serving = _Snapshot(
                engine=snapshot.engine,
                searcher=searcher,
                size=snapshot.size,
                index_generation=self._index.generation,
                version=self._bump_snapshot_version(),
            )
            self._dirty = True
            if self.path is not None:
                self.save()

    def compact_index(self, *, num_shards: Optional[int] = None) -> None:
        """Fold the index's delta shards and tombstones into its base.

        Compaction recomputes IDF statistics and TF-IDF weights from the
        stored raw counts; the result is bit-identical to rebuilding the
        postings from scratch under the same frozen codebook, so query
        results are unchanged (modulo the documented IDF drift deltas
        accumulate before compaction).  A no-op when the index has no
        deltas and no tombstones.
        """
        with self._lock:
            self._require_open()
            if self._index is None or self._index.stale:
                raise self._error(
                    "no fresh index to compact; run build_index() first"
                )
            persisted = self._index
            index = persisted.index
            if not index.num_delta_shards and not index.num_tombstones:
                return
            deltas = int(index.num_delta_shards)
            tombstones = int(index.num_tombstones)
            cfg = self.config.index
            compacted, slot_map = index.compact(
                num_shards=cfg.num_shards if num_shards is None else num_shards
            )
            self._index = _PersistedIndex(
                index=compacted,
                codebook=persisted.codebook,
                slots=[
                    name for slot, name in enumerate(persisted.slots)
                    if slot_map[slot] >= 0
                ],
                pq=persisted.pq,
                generation=persisted.generation + 1,  # slots renumbered
            )
            self._m_index_updates.labels(kind="compaction").inc()
            self._events.emit(
                "index", "compaction",
                folded_delta_shards=deltas,
                dropped_tombstones=tombstones,
                live=int(compacted.num_live),
                generation=self._index.generation,
            )
            self._events.emit(
                "cache", "candidate_cache_invalidated", level="debug",
                reason="compaction",
            )
            # Only the searcher changes: the next query derives a
            # snapshot around the same prepared engine (zero pending
            # mutations) instead of rebuilding it.
            self._invalidate(index_updated=True)
            if self.path is not None:
                self.save()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        values: Union[Sequence[float], np.ndarray],
        k: Optional[int] = None,
        *,
        mode: str = "auto",
        candidates: Optional[int] = None,
        exclude_identifier: Optional[str] = None,
        rank_mode: Optional[str] = None,
    ) -> WorkspaceQueryResult:
        """k nearest stored series to a query.

        Parameters
        ----------
        values:
            The query series.
        k:
            Neighbours to return (default: ``config.default_k``).
        mode:
            ``"exact"`` runs the full engine cascade; ``"indexed"`` runs
            candidate generation + exact re-rank (requires a fresh
            index); ``"auto"`` picks ``indexed`` when a fresh index
            exists, ``exact`` otherwise.
        candidates:
            Per-query candidate budget override (indexed mode).
        exclude_identifier:
            Skip this stored identifier (leave-one-out evaluations).
        rank_mode:
            Stage-1 ranking override for indexed queries: ``"tfidf"``
            or ``"pq"`` (default: ``config.index.rank_mode``).
        """
        self._require_open()
        k = self.config.default_k if k is None else check_int_at_least(k, 1, "k")
        requested = str(mode).strip().lower()
        if requested not in _MODES:
            raise ValidationError(
                f"unknown query mode {mode!r}; choose one of {_MODES}"
            )
        started = time.perf_counter()
        snapshot = self._ensure_serving()
        if snapshot.size == 0:
            # Covers both the never-filled workspace and the mutated
            # path where every live series has been removed (a query
            # racing the remove of the last series either serves the
            # pre-mutation snapshot or lands here — never an engine
            # error).
            raise self._error(
                "cannot query an empty workspace (no live series)"
            )
        resolved = requested
        if requested == "auto":
            resolved = "indexed" if snapshot.searcher is not None else "exact"
        # The telemetry decision is made once per query: disabled means
        # no trace object and every metric handle below is a no-op.
        trace: Optional[QueryTrace] = None
        if self._metrics.enabled:
            trace = QueryTrace(
                requested_mode=requested, k=k, collection_size=snapshot.size
            )
        if resolved == "indexed":
            if snapshot.searcher is None:
                raise self._error(
                    "no fresh index is available (build_index() has not run "
                    "since the last mutation); use mode='exact' or rebuild"
                )
            with trace_scope(trace):
                result = snapshot.searcher.query(
                    values, k,
                    candidates=candidates,
                    exclude_identifier=exclude_identifier,
                    rank_mode=rank_mode,
                )
            outcome = WorkspaceQueryResult(
                hits=self._remap_hits(snapshot, result.hits),
                mode="indexed",
                requested_mode=requested,
                k=k,
                collection_size=snapshot.size,
                candidates_generated=result.candidates_generated,
                generation_seconds=result.generation_seconds,
                rerank_seconds=result.rerank_seconds,
                stats=result.stats,
                trace=trace,
                snapshot_version=snapshot.version,
            )
            return self._finish_query(outcome, trace, started)
        queue_wait = 0.0
        if self._batcher is not None:
            request = self._batcher.submit_request(
                (snapshot, as_series(values, "values"), k, exclude_identifier)
            )
            engine_result = request.result
            queue_wait = request.queue_wait_seconds
        else:
            engine_result = snapshot.engine.query(
                values, k, exclude_identifier=exclude_identifier
            )
        outcome = WorkspaceQueryResult(
            hits=self._remap_hits(snapshot, engine_result.hits),
            mode="exact",
            requested_mode=requested,
            k=k,
            collection_size=snapshot.size,
            candidates_generated=snapshot.size,
            generation_seconds=0.0,
            rerank_seconds=engine_result.stats.elapsed_seconds,
            stats=engine_result.stats,
            queue_wait_seconds=queue_wait,
            trace=trace,
            snapshot_version=snapshot.version,
        )
        return self._finish_query(outcome, trace, started)

    def _finish_query(
        self,
        result: WorkspaceQueryResult,
        trace: Optional[QueryTrace],
        started: float,
    ) -> WorkspaceQueryResult:
        """Record a served query: aggregate metrics + the sealed trace.

        ``trace is None`` means telemetry is off; the method then only
        pays two no-op counter calls.  Cascade stages are assembled from
        the result's :class:`EngineStats` (never re-timed), topped up by
        a ``cascade_overhead`` span (engine wall time outside the four
        accounted phases) and the residual ``other`` span added by
        :meth:`QueryTrace.finish`, so the stage sum equals the measured
        end-to-end wall time exactly.
        """
        self._m_queries.labels(mode=result.mode).inc()
        threshold = self.config.serving.slow_query_threshold
        if trace is None:
            # Telemetry off: slow-query capture still works (armed by
            # its own threshold knob), just without a trace to attach.
            if threshold is not None:
                elapsed = time.perf_counter() - started
                if elapsed >= threshold:
                    self._record_slow_query(result, None, elapsed, threshold)
            return result
        elapsed = time.perf_counter() - started
        stats = result.stats
        self._m_query_seconds.labels(mode=result.mode).observe(elapsed)
        stage_hist = self._m_stage_seconds
        if result.queue_wait_seconds:
            stage_hist.labels(stage="queue_wait").observe(result.queue_wait_seconds)
        if result.generation_seconds:
            stage_hist.labels(stage="generation").observe(result.generation_seconds)
        stage_hist.labels(stage="bounds").observe(stats.bound_seconds)
        stage_hist.labels(stage="extract").observe(stats.extract_seconds)
        stage_hist.labels(stage="matching").observe(stats.matching_seconds)
        stage_hist.labels(stage="dp").observe(stats.dp_seconds)
        self._m_candidates.inc(stats.candidates)
        self._m_pruned.labels(stage="lb_kim").inc(stats.pruned_lb_kim)
        self._m_pruned.labels(stage="lb_keogh").inc(stats.pruned_lb_keogh)
        self._m_dtw.labels(outcome="completed").inc(stats.dtw_computed)
        self._m_dtw.labels(outcome="abandoned").inc(stats.dtw_abandoned)
        self._m_cells_filled.inc(stats.cells_filled)
        self._m_cells_total.inc(stats.total_cells)
        trace.mode = result.mode
        trace.candidates_generated = result.candidates_generated
        if result.queue_wait_seconds:
            trace.add_stage("queue_wait", result.queue_wait_seconds)
        trace.add_stage(
            "bounds",
            stats.bound_seconds,
            lb_kim_computed=stats.lb_kim_computed,
            lb_keogh_computed=stats.lb_keogh_computed,
            pruned_lb_kim=stats.pruned_lb_kim,
            pruned_lb_keogh=stats.pruned_lb_keogh,
            prune_rate=stats.prune_rate,
        )
        trace.add_stage("extract", stats.extract_seconds)
        trace.add_stage("matching", stats.matching_seconds)
        trace.add_stage(
            "dp",
            stats.dp_seconds,
            dtw_computed=stats.dtw_computed,
            dtw_abandoned=stats.dtw_abandoned,
            cells_filled=stats.cells_filled,
            cell_fraction=stats.cell_fraction,
        )
        cascade_overhead = stats.elapsed_seconds - (
            stats.bound_seconds
            + stats.extract_seconds
            + stats.matching_seconds
            + stats.dp_seconds
        )
        if cascade_overhead > 0.0:
            trace.add_stage("cascade_overhead", cascade_overhead)
        trace.attributes["candidates"] = stats.candidates
        trace.attributes["prune_rate"] = stats.prune_rate
        trace.finish(elapsed)
        self._traces.append(trace)
        if threshold is not None and elapsed >= threshold:
            self._record_slow_query(result, trace, elapsed, threshold)
        return result

    def _record_slow_query(
        self,
        result: WorkspaceQueryResult,
        trace: Optional[QueryTrace],
        elapsed: float,
        threshold: float,
    ) -> None:
        """Capture one over-threshold query into the slow-query log.

        The record bundles the sealed trace with a recent event-log
        excerpt — the "what happened just before this" context — and is
        kept in the in-memory ring plus, for path-backed workspaces,
        appended to ``slow_queries.jsonl``.  Capture is best-effort:
        a full disk counts a drop, it never fails the query.
        """
        record = json_safe({
            "captured_at": manifest_timestamp(),
            "elapsed_seconds": float(elapsed),
            "threshold_seconds": float(threshold),
            "mode": result.mode,
            "requested_mode": result.requested_mode,
            "k": result.k,
            "collection_size": result.collection_size,
            "candidates_generated": result.candidates_generated,
            "queue_wait_seconds": result.queue_wait_seconds,
            "hits": [
                {"identifier": hit.identifier, "distance": hit.distance}
                for hit in result.hits[:5]
            ],
            "trace": None if trace is None else trace.to_dict(),
            "events": self._events.to_dicts(limit=20),
        })
        self._m_slow_queries.inc()
        self._events.emit(
            "workspace", "slow_query", level="warn",
            mode=result.mode,
            elapsed_seconds=float(elapsed),
            threshold_seconds=float(threshold),
        )
        with self._slow_lock:
            self._slow_queries.append(record)
            path = self._slow_path
            if path is not None:
                try:
                    with open(path, "a", encoding="utf-8") as handle:
                        json.dump(record, handle, separators=(",", ":"))
                        handle.write("\n")
                except OSError:
                    self._slow_query_drops += 1

    @staticmethod
    def _remap_hits(
        snapshot: _Snapshot, hits: Tuple[EngineHit, ...]
    ) -> Tuple[EngineHit, ...]:
        """Translate engine-slot hit indices into live-roster positions.

        On a derived engine with tombstones the slot numbering has gaps;
        live slots in ascending order correspond exactly to the live
        roster (removals preserve relative order, additions append), so
        the translation is a rank lookup.  Identity on fresh engines.
        """
        mapping = snapshot.engine_to_live
        if mapping is None:
            return hits
        return tuple(
            dataclasses.replace(hit, index=int(mapping[hit.index]))
            for hit in hits
        )

    def knn(
        self,
        queries: Sequence[Union[Sequence[float], np.ndarray]],
        k: Optional[int] = None,
        *,
        exclude_identifiers: Optional[Sequence[Optional[str]]] = None,
    ) -> BatchKNNResult:
        """Exact batch k-NN over many queries in one engine call."""
        self._require_open()
        k = self.config.default_k if k is None else check_int_at_least(k, 1, "k")
        snapshot = self._ensure_serving()
        if snapshot.size == 0:
            raise self._error(
                "cannot query an empty workspace (no live series)"
            )
        batch = snapshot.engine.knn(
            queries, k, exclude_identifiers=exclude_identifiers
        )
        if snapshot.engine_to_live is not None:
            batch.results = [
                dataclasses.replace(
                    result, hits=self._remap_hits(snapshot, result.hits)
                )
                for result in batch.results
            ]
        return batch

    def _run_exact_batch(self, batch: List[QueryRequest]) -> None:
        """Micro-batch runner: group coalesced requests and run one knn each.

        Requests are grouped by (snapshot, k) — concurrent callers racing
        a mutation may hold different snapshots, and the engine's batch
        entry point takes one k for the whole batch.  Genuine batches are
        executed through the engine's vectorised batch kernels (the
        throughput rationale for coalescing; results are identical across
        backends), while a lone request keeps the configured backend.
        """
        groups: Dict[Tuple[int, int], List[QueryRequest]] = {}
        for request in batch:
            snapshot, _, k, _ = request.payload
            groups.setdefault((id(snapshot), k), []).append(request)
        for requests in groups.values():
            snapshot = requests[0].payload[0]
            k = requests[0].payload[2]
            try:
                outcome = snapshot.engine.knn(
                    [request.payload[1] for request in requests],
                    k,
                    exclude_identifiers=[
                        request.payload[3] for request in requests
                    ],
                    backend=(
                        "vectorized"
                        if len(requests) > 1
                        and snapshot.engine.backend == "serial"
                        else None
                    ),
                )
            except BaseException as exc:  # noqa: BLE001 - per-request delivery
                for request in requests:
                    request.fail(exc)
                continue
            for request, result in zip(requests, outcome.results):
                request.resolve(result)

    # ------------------------------------------------------------------ #
    # Pairwise distances
    # ------------------------------------------------------------------ #
    def pairwise(
        self,
        x: Union[Sequence[float], np.ndarray],
        y: Union[Sequence[float], np.ndarray],
        constraint: Optional[str] = None,
    ) -> SDTWResult:
        """One sDTW distance between two arbitrary series.

        Delegates to :class:`~repro.core.sdtw.SDTW` under the workspace
        configuration; the default constraint is the engine's.
        """
        self._require_open()
        with self._lock:
            if self._pairwise is None:
                self._pairwise = SDTW(self.config.sdtw)
            engine = self._pairwise
        return engine.distance(
            x, y,
            constraint=(
                self.config.engine.constraint if constraint is None else constraint
            ),
        )

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #
    def stream(
        self,
        pattern: Union[Sequence[float], np.ndarray],
        *,
        threshold: float,
        name: Optional[str] = None,
        mode: str = "spring",
        constraint: Optional[str] = None,
        streams: Optional[Sequence[str]] = None,
    ) -> str:
        """Register a query pattern on the embedded stream monitor.

        Returns the pattern name.  Streams are runtime state: they are
        *not* persisted in the workspace manifest (reopenings start with
        an empty monitor).  Use :meth:`add_stream`, :meth:`push` and
        :meth:`extend` to feed data, or work with :attr:`monitor`
        directly for the full streaming API.
        """
        return self.monitor.add_pattern(
            pattern,
            threshold=threshold,
            name=name,
            mode=mode,
            constraint=(
                self.config.engine.constraint if constraint is None else constraint
            ),
            streams=streams,
        )

    def add_stream(
        self, name: Optional[str] = None, *, capacity: Optional[int] = None
    ) -> str:
        """Register a stream on the embedded monitor; returns its name."""
        return self.monitor.add_stream(name, capacity=capacity)

    def push(self, stream: str, value: float) -> List[StreamMatch]:
        """Feed one sample into a registered stream."""
        return self.monitor.push(stream, value)

    def extend(
        self, stream: str, values: Union[Sequence[float], np.ndarray]
    ) -> List[StreamMatch]:
        """Feed many samples into a registered stream in order."""
        return self.monitor.extend(stream, values)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self) -> str:
        """Write the manifest, feature store and index; returns the manifest path.

        Only valid on path-backed workspaces (create one with
        :meth:`create`, or assign :attr:`path` before saving).
        """
        with self._lock:
            if self.path is None:
                raise self._error(
                    "this workspace is in-memory; create it with "
                    "Workspace.create(path) to persist"
                )
            os.makedirs(self.path, exist_ok=True)
            store_file: Optional[str] = None
            if self._identifiers:
                store_file = STORE_NAME
                self._store.save(os.path.join(self.path, STORE_NAME))
            index_dir: Optional[str] = None
            if self._index is not None and not self._index.stale:
                index_dir = INDEX_DIR_NAME
                from ..indexing import IndexWriter

                label_of = dict(zip(self._identifiers, self._labels))
                tombstones = self._index.index.tombstones
                slot_labels = [
                    None if tombstones[slot] else label_of.get(identifier)
                    for slot, identifier in enumerate(self._index.slots)
                ]
                IndexWriter(os.path.join(self.path, INDEX_DIR_NAME)).write(
                    self._index.index,
                    self._index.codebook,
                    self._index.slots,
                    slot_labels,
                    feature_store=self._store,
                    extraction_config=self.config.sdtw,
                    pq=self._index.pq,
                )
            else:
                # A previously persisted index that is now stale (or was
                # never built) is not referenced by the manifest; drop the
                # orphaned directory so the on-disk layout matches it.
                orphan = os.path.join(self.path, INDEX_DIR_NAME)
                if os.path.isdir(orphan):
                    shutil.rmtree(orphan)
            manifest = {
                "format": FORMAT_NAME,
                "version": FORMAT_VERSION,
                "created": manifest_timestamp(),
                "config": self.config.to_dict(),
                "series": [
                    {"identifier": identifier, "label": label}
                    for identifier, label in zip(self._identifiers, self._labels)
                ],
                "store_file": store_file,
                "index_dir": index_dir,
            }
            manifest_path = os.path.join(self.path, MANIFEST_NAME)
            with open(manifest_path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2)
                handle.write("\n")
            self._dirty = False
            self._events.emit(
                "workspace", "saved",
                num_series=len(self._identifiers),
                index_persisted=index_dir is not None,
            )
            return manifest_path


def manifest_timestamp() -> str:
    """Seconds-resolution UTC timestamp recorded in workspace manifests."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


__all__ = ["WIRE_FORMAT", "WIRE_VERSION", "Workspace", "WorkspaceQueryResult"]
