"""Service layer: the :class:`Workspace` facade over batch, indexed and
streaming sDTW.

One stateful front door for the whole library (see
:mod:`repro.service.workspace` for the object model and the on-disk
layout, :mod:`repro.service.config` for the declarative configuration,
and :mod:`repro.service.batching` for the concurrent request path).
"""

from .batching import MicroBatcher
from .config import (
    DEFAULT_WORKSPACE_CONFIG,
    EngineConfig,
    IndexConfig,
    ServingConfig,
    WorkspaceConfig,
)
from .doctor import DoctorCheck, DoctorReport, run_doctor
from .workspace import Workspace, WorkspaceQueryResult

__all__ = [
    "DEFAULT_WORKSPACE_CONFIG",
    "DoctorCheck",
    "DoctorReport",
    "EngineConfig",
    "IndexConfig",
    "MicroBatcher",
    "ServingConfig",
    "Workspace",
    "WorkspaceConfig",
    "WorkspaceQueryResult",
    "run_doctor",
]
