"""Declarative configuration of the :class:`~repro.service.Workspace`.

Before the service layer, every subsystem grew its own construction
ritual: :class:`~repro.engine.DistanceEngine` took backend/pruning
kwargs, :class:`~repro.indexing.IndexedSearcher` took codebook/shard
kwargs, :class:`~repro.streaming.StreamMonitor` took its own switches,
and only the extraction configuration (:class:`~repro.core.config
.SDTWConfig`) was persisted anywhere.  :class:`WorkspaceConfig` gathers
all of it into one declarative object with a full ``to_dict`` /
``from_dict`` round trip, so a workspace manifest records *everything*
needed to reopen the workspace and serve bit-identical results.

Sections
--------
``sdtw``
    The paper pipeline configuration (scale space, descriptors,
    matching, band widths) shared by every subsystem.
``engine``
    The exact re-ranking engine: constraint family, execution backend,
    cascade switches.
``index``
    The optional inverted index: codebook size, shard count, candidate
    budget, build seed.
``serving``
    The concurrent request path: micro-batching of simultaneous
    ``query`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.config import SDTWConfig, _DictRoundTrip
from ..exceptions import ConfigurationError

_BACKENDS = ("serial", "vectorized", "multiprocessing")


@dataclass(frozen=True)
class EngineConfig(_DictRoundTrip):
    """Exact-scan engine settings (see :class:`repro.engine.DistanceEngine`).

    Attributes
    ----------
    constraint:
        Refinement constraint family: ``"full"``, ``"fc,fw"``,
        ``"itakura"``, or any sDTW adaptive family (``"ac,aw"``, ...).
    backend:
        Execution backend: ``"serial"``, ``"vectorized"`` or
        ``"multiprocessing"``.
    num_workers:
        Worker processes for the multiprocessing backend (``None``: CPU
        count).
    prune:
        Master switch for the LB_Kim / LB_Keogh cascade stages.
    early_abandon:
        Whether refinements stop once they provably exceed the running
        k-th best distance.
    batch_size:
        Chunk size of the vectorised refinement stage.
    itakura_max_slope:
        Slope parameter of the ``"itakura"`` constraint.
    """

    constraint: str = "fc,fw"
    backend: str = "serial"
    num_workers: Optional[int] = None
    prune: bool = True
    early_abandon: bool = True
    batch_size: int = 32
    itakura_max_slope: float = 2.0

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1 when given")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.itakura_max_slope <= 1.0:
            raise ConfigurationError("itakura_max_slope must be greater than 1")


@dataclass(frozen=True)
class IndexConfig(_DictRoundTrip):
    """Inverted-index settings (see :mod:`repro.indexing`).

    Attributes
    ----------
    num_codewords:
        Codebook size of the k-means quantizer.
    num_shards:
        Number of postings shards the index is persisted as.
    candidate_budget:
        Default number of candidates generated per indexed query.
    seed:
        Seed of the deterministic codebook fit (recorded so a rebuild
        reproduces the same index bit for bit).
    mmap:
        Whether reopened shards are served memory-mapped (lock-free
        reads that fault pages in on demand) or loaded fully into RAM.
    incremental:
        Keep the index fresh across :meth:`Workspace.add` /
        :meth:`Workspace.remove` by appending delta shards and
        tombstones (O(new features) per mutation) instead of marking it
        stale until the next full rebuild.
    max_delta_shards:
        Auto-compaction threshold: once an incremental update would
        leave more than this many delta shards, the workspace folds
        them back into the base shards.
    pq:
        Fit a :class:`~repro.indexing.pq.ResidualPQ` at build time and
        store descriptor-residual codes alongside the postings (enables
        ``rank_mode="pq"`` and the compression reported by ``stats``).
    pq_subquantizers:
        Sub-quantizers of the residual PQ (stored bytes per feature).
    pq_bits:
        Bits per PQ sub-quantizer code (sub-codebook size ``2**bits``).
    rank_mode:
        Default stage-1 candidate ranking for indexed queries:
        ``"tfidf"`` (codeword-overlap cosine) or ``"pq"`` (asymmetric
        PQ descriptor distances; requires ``pq=True``).
    postings_cache:
        Hot postings pages kept decoded per shard (codeword -> posting
        arrays with weights already converted to float64).  Serving
        shards are immutable, so cached pages stay valid across snapshot
        derivations and index clones.  ``0`` disables the cache.
    candidate_cache:
        LRU entries of quantised-query candidate sets kept per serving
        searcher (keyed by query bytes, budget and rank mode).  A repeat
        query skips stage 1 entirely.  ``0`` disables the cache.
    """

    num_codewords: int = 256
    num_shards: int = 4
    candidate_budget: int = 100
    seed: int = 7
    mmap: bool = True
    incremental: bool = True
    max_delta_shards: int = 32
    pq: bool = True
    pq_subquantizers: int = 8
    pq_bits: int = 8
    rank_mode: str = "tfidf"
    postings_cache: int = 256
    candidate_cache: int = 128

    def __post_init__(self) -> None:
        if self.num_codewords < 1:
            raise ConfigurationError("num_codewords must be >= 1")
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if self.candidate_budget < 1:
            raise ConfigurationError("candidate_budget must be >= 1")
        if self.max_delta_shards < 1:
            raise ConfigurationError("max_delta_shards must be >= 1")
        if self.pq_subquantizers < 1:
            raise ConfigurationError("pq_subquantizers must be >= 1")
        if not 1 <= self.pq_bits <= 8:
            raise ConfigurationError("pq_bits must be between 1 and 8")
        if self.rank_mode not in ("tfidf", "pq"):
            raise ConfigurationError(
                f"rank_mode must be 'tfidf' or 'pq', got {self.rank_mode!r}"
            )
        if self.rank_mode == "pq" and not self.pq:
            raise ConfigurationError(
                "rank_mode='pq' requires pq=True (codes must be built)"
            )
        if self.postings_cache < 0:
            raise ConfigurationError("postings_cache must be >= 0")
        if self.candidate_cache < 0:
            raise ConfigurationError("candidate_cache must be >= 0")


@dataclass(frozen=True)
class ServingConfig(_DictRoundTrip):
    """Concurrent request-path settings.

    Attributes
    ----------
    micro_batch:
        Coalesce concurrent exact ``query`` calls into one engine batch
        (:meth:`repro.engine.DistanceEngine.knn`) instead of running each
        caller's cascade independently.  Results are bit-identical either
        way; batching trades a small queueing delay for shared batch-DP
        work and is worthwhile under multi-threaded load.
    batch_window_ms:
        How long the first request of a batch waits once at least one
        companion is queued (a request that stays alone never waits; see
        :class:`~repro.service.batching.MicroBatcher`).
    max_batch:
        Requests per batch before the window closes early.
    incremental_snapshots:
        Derive the serving snapshot from the previous one after a
        mutation (shared prepared segments, appended series, query-time
        tombstones — O(new) instead of an O(N) engine rebuild).
        ``False`` restores the PR 5 behaviour of rebuilding the snapshot
        from scratch on the first query after any mutation; results are
        bit-identical either way.
    telemetry:
        Collect metrics and per-query traces (see
        :mod:`repro.telemetry`).  When ``False`` the workspace holds the
        no-op :data:`~repro.telemetry.NULL_REGISTRY`, queries carry no
        trace, and the instrumented paths cost one empty method call —
        the overhead of the enabled path is itself gated at <= 5% by
        ``benchmarks/bench_workspace_serving.py --telemetry-guard``.
    trace_ring:
        Recent query traces retained in memory for
        :meth:`Workspace.recent_traces`.  ``0`` keeps per-result traces
        but retains no history.
    event_log_ring:
        Recent structured events (see :mod:`repro.telemetry.events`)
        retained in memory for :meth:`Workspace.recent_events` and the
        flight record.  ``0`` keeps no ring (the file sink, if any,
        still records).  The whole event log follows the ``telemetry``
        master switch.
    event_log_file:
        Mirror every event into ``events.jsonl`` inside the workspace
        directory (path-backed workspaces only), rotated once it
        exceeds ``event_log_max_bytes``.
    event_log_max_bytes:
        Rotation threshold of the event-log file sink; the previous
        generation is kept as ``events.jsonl.1``, bounding disk usage
        at roughly twice this size.
    slow_query_threshold:
        Queries whose end-to-end wall time reaches this many seconds
        have their full :class:`~repro.telemetry.QueryTrace` (plus a
        recent event-log excerpt) persisted to ``slow_queries.jsonl``
        in the workspace directory and retained in
        :meth:`Workspace.slow_queries`.  ``None`` disables capture;
        ``0.0`` captures every query (the CI smoke configuration).
        Applies to exact, indexed and micro-batched queries alike.
    slow_query_ring:
        Slow-query records retained in memory (the surface for
        in-memory workspaces, where there is no ``slow_queries.jsonl``).
    """

    micro_batch: bool = False
    batch_window_ms: float = 2.0
    max_batch: int = 32
    incremental_snapshots: bool = True
    telemetry: bool = True
    trace_ring: int = 64
    event_log_ring: int = 512
    event_log_file: bool = True
    event_log_max_bytes: int = 4_000_000
    slow_query_threshold: Optional[float] = None
    slow_query_ring: int = 64

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ConfigurationError("batch_window_ms must be non-negative")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.trace_ring < 0:
            raise ConfigurationError("trace_ring must be >= 0")
        if self.event_log_ring < 0:
            raise ConfigurationError("event_log_ring must be >= 0")
        if self.event_log_max_bytes < 1024:
            raise ConfigurationError("event_log_max_bytes must be >= 1024")
        if self.slow_query_threshold is not None and self.slow_query_threshold < 0:
            raise ConfigurationError(
                "slow_query_threshold must be >= 0 seconds when given"
            )
        if self.slow_query_ring < 0:
            raise ConfigurationError("slow_query_ring must be >= 0")


@dataclass(frozen=True)
class WorkspaceConfig(_DictRoundTrip):
    """Full declarative configuration of a :class:`~repro.service.Workspace`.

    Attributes
    ----------
    sdtw:
        Extraction / band configuration shared by every subsystem.
    engine:
        Exact-scan engine settings.
    index:
        Inverted-index settings.
    serving:
        Concurrent request-path settings.
    default_k:
        Neighbours returned when ``query`` is called without ``k``.
    """

    sdtw: SDTWConfig = field(default_factory=SDTWConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    index: IndexConfig = field(default_factory=IndexConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    default_k: int = 10

    def __post_init__(self) -> None:
        if self.default_k < 1:
            raise ConfigurationError("default_k must be >= 1")

    @classmethod
    def from_dict(cls, data: dict) -> "WorkspaceConfig":
        """Rebuild a configuration written by :meth:`to_dict`."""
        payload = dict(data)
        return cls(
            sdtw=SDTWConfig.from_dict(payload.pop("sdtw", {})),
            engine=EngineConfig.from_dict(payload.pop("engine", {})),
            index=IndexConfig.from_dict(payload.pop("index", {})),
            serving=ServingConfig.from_dict(payload.pop("serving", {})),
            **payload,
        )


DEFAULT_WORKSPACE_CONFIG = WorkspaceConfig()
"""Module-level default workspace configuration."""
