"""Micro-batching of concurrent exact queries.

Under multi-threaded load, N callers each running the full per-query
cascade contend for the interpreter; the engine's batch entry point
(:meth:`repro.engine.DistanceEngine.knn`) answers the same N queries in
one call, sharing the prepared collection caches and — on the
vectorised backend — advancing the batched dynamic program in numpy
instead of N Python row loops.  :class:`MicroBatcher` is the combiner
that turns concurrent ``query`` calls into such batches:

* the first caller to arrive becomes the **leader**: if no companion is
  queued it executes immediately (a solo query never pays a batching
  latency floor); once at least one companion is waiting it holds the
  window open up to the configured duration (closing early once
  ``max_batch`` requests are queued), drains the queue, and executes
  the batch;
* every other caller (**follower**) just blocks on its own event and is
  handed its result when the leader finishes;
* leadership is held across batch execution: requests arriving while a
  batch is in flight queue as followers, and the leader drains them as
  the next batch before retiring (group-commit coalescing — under load
  the batch size tracks the execution time of the previous batch, with
  no window sleep at all).  Leadership is only released, under the
  queue lock, once the queue is empty, so no request can be stranded
  between batches.

Queue draining and leadership hand-off happen under one lock, so a
request can never be stranded between batches.  Because the engine
answers batched queries independently per query, the results are
bit-identical to the same calls made without batching — batching is a
throughput knob, never a semantics knob.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional


class QueryRequest:
    """One in-flight query: inputs, completion event, and the outcome.

    Timestamps record the enqueue→execute path: ``enqueued_at`` is set
    at construction, ``started_at`` when the leader drains the request
    into a batch.  Their difference, :attr:`queue_wait_seconds`, is the
    micro-batching delay this request actually paid and is surfaced as
    its own stage in ``WorkspaceQueryResult.timings()`` so batched and
    unbatched queries have comparable breakdowns.
    """

    __slots__ = ("payload", "event", "result", "error", "enqueued_at", "started_at")

    def __init__(self, payload: object) -> None:
        self.payload = payload
        self.event = threading.Event()
        self.result: Optional[object] = None
        self.error: Optional[BaseException] = None
        self.enqueued_at = time.perf_counter()
        self.started_at: Optional[float] = None

    @property
    def queue_wait_seconds(self) -> float:
        """Seconds spent queued before batch execution began (0.0 if
        the request never reached a batch)."""
        if self.started_at is None:
            return 0.0
        return max(0.0, self.started_at - self.enqueued_at)

    def resolve(self, result: object) -> None:
        self.result = result
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


RunBatch = Callable[[List[QueryRequest]], None]


class MicroBatcher:
    """Coalesce concurrent submissions into batches executed by one leader.

    Parameters
    ----------
    run_batch:
        Callable executing a drained batch; it must resolve (or fail)
        every request it is handed.  Exceptions escaping it fail the
        whole batch, so no follower can block forever.
    window_seconds:
        How long a leader holds the window open once at least one
        companion request is queued.  A leader whose queue stays empty
        closes the window immediately instead of sleeping it out.
    max_batch:
        Queue length at which the window closes early.
    metrics:
        Optional :class:`repro.telemetry.MetricsRegistry` (or the no-op
        null registry).  When given, the batcher observes batch-size and
        per-request queue-wait distributions under
        ``repro_microbatch_batch_size`` /
        ``repro_microbatch_queue_wait_seconds``.
    events:
        Optional :class:`repro.telemetry.EventLog` (or the no-op null
        log).  Worker-side request failures emit a ``batcher``
        ``request_failed`` event, so the operator log records failures
        even when the caller swallowed the re-raised exception.
    """

    def __init__(
        self,
        run_batch: RunBatch,
        *,
        window_seconds: float = 0.002,
        max_batch: int = 32,
        metrics=None,
        events=None,
    ) -> None:
        self._run_batch = run_batch
        self.window_seconds = max(0.0, float(window_seconds))
        self.max_batch = max(1, int(max_batch))
        self._lock = threading.Lock()
        self._queue: List[QueryRequest] = []
        self._leader_active = False
        self.batches_executed = 0
        self.requests_batched = 0
        if metrics is not None:
            from ..telemetry.registry import DEFAULT_SIZE_BUCKETS

            self._batch_size_hist = metrics.histogram(
                "repro_microbatch_batch_size",
                "Requests coalesced per executed micro-batch.",
                buckets=DEFAULT_SIZE_BUCKETS,
            )
            self._queue_wait_hist = metrics.histogram(
                "repro_microbatch_queue_wait_seconds",
                "Enqueue-to-execute wait per micro-batched request.",
            )
        else:
            self._batch_size_hist = None
            self._queue_wait_hist = None
        self._events = events

    def submit(self, payload: object) -> object:
        """Enqueue one request and block until its result is available."""
        return self.submit_request(payload).result

    def submit_request(self, payload: object) -> QueryRequest:
        """Like :meth:`submit`, but return the resolved
        :class:`QueryRequest` so callers can read its queue-wait
        timestamps alongside the result."""
        request = QueryRequest(payload)
        with self._lock:
            self._queue.append(request)
            is_leader = not self._leader_active
            if is_leader:
                self._leader_active = True
        if not is_leader:
            request.event.wait()
        else:
            self._lead()
        if request.error is not None:
            raise request.error
        return request

    def _report_failures(self, batch: List[QueryRequest]) -> None:
        """Emit one ``request_failed`` event for a batch with failures.

        A failed request re-raises in its submitting caller, but a
        caller may swallow that — the event log is how the *operator*
        still sees it.  One event per batch (not per request) keeps an
        error storm bounded; emission itself must never raise into the
        leader loop.
        """
        if self._events is None:
            return
        failures = [request for request in batch if request.error is not None]
        if not failures:
            return
        first = failures[0].error
        try:
            self._events.emit(
                "batcher", "request_failed", level="error",
                failed=len(failures),
                batch_size=len(batch),
                error=type(first).__name__,
                message=str(first),
            )
        except Exception:  # noqa: BLE001 - diagnostics must not kill the leader
            pass

    # ------------------------------------------------------------------ #
    # Leader protocol
    # ------------------------------------------------------------------ #
    def _lead(self) -> None:
        while True:
            deadline = time.monotonic() + self.window_seconds
            while True:
                with self._lock:
                    size = len(self._queue)
                if size >= self.max_batch:
                    break
                if size <= 1:
                    # Nothing but (at most) one request is waiting:
                    # close the window immediately instead of sleeping
                    # it out, so a solo query never pays a batching
                    # latency floor.
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                time.sleep(min(0.0005, remaining))
            with self._lock:
                batch = self._queue
                self._queue = []
                self.batches_executed += 1
                self.requests_batched += len(batch)
            now = time.perf_counter()
            for request in batch:
                request.started_at = now
            if self._batch_size_hist is not None:
                self._batch_size_hist.observe(len(batch))
                for request in batch:
                    self._queue_wait_hist.observe(request.queue_wait_seconds)
            try:
                self._run_batch(batch)
            except BaseException as exc:  # noqa: BLE001 - propagated per request
                for request in batch:
                    if not request.event.is_set():
                        request.fail(exc)
            finally:
                for request in batch:
                    if not request.event.is_set():
                        request.fail(
                            RuntimeError(
                                "batch runner did not resolve this request"
                            )
                        )
                self._report_failures(batch)
            with self._lock:
                # Retire only once the queue is drained; requests that
                # arrived during execution are this leader's next batch.
                # Hand-off is atomic with the emptiness check, so a
                # submission always finds either an active leader or an
                # empty queue — never a stranded request.
                if not self._queue:
                    self._leader_active = False
                    return


__all__ = ["MicroBatcher", "QueryRequest"]
