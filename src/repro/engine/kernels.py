"""Batched DTW kernels: one query against many candidates in lock-step.

When every candidate shares the same constraint band (the ``full``,
Sakoe–Chiba and Itakura families over an equal-length collection), the
banded dynamic program can advance row ``i`` for *all* candidates with a
handful of numpy operations on ``(C, width)`` matrices instead of ``C``
separate Python-level row loops.  The row update is the same closed form
used by :func:`repro.dtw.banded._banded_dtw_distance_only`:

    vals[j] = prefix[j] + min_{t <= j} (diag_or_up[t] - prefix[t - 1])

and because numpy's ``cumsum`` / ``minimum.accumulate`` / ``sum`` apply the
same reduction order along the last axis of a 2-D array as on a 1-D array,
the batched distances are bit-identical to the per-pair ones — which is
what the cross-backend equivalence suite pins down.

Early abandonment works per candidate: a candidate whose whole row exceeds
the threshold can never beat it (costs are non-negative), so its row is
compacted out of the batch and contributes no further work; when every
candidate is abandoned the kernel returns immediately.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dtw.banded import Band, abandon_cutoff
from ..exceptions import BandError


def banded_dtw_batch(
    query: np.ndarray,
    candidates: np.ndarray,
    band: Band,
    func,
    abandon_threshold: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Band-constrained DTW of one query against a stack of candidates.

    Parameters
    ----------
    query:
        Query series of length N.
    candidates:
        ``(C, M)`` matrix of equal-length candidate series.
    band:
        A *validated* band of shape ``(N, 2)`` shared by every candidate
        (validate with :func:`repro.dtw.banded.validate_band` first).
    func:
        Pointwise distance callable (broadcasting).
    abandon_threshold:
        Optional early-abandoning threshold applied to every candidate.

    Returns
    -------
    (distances, cells, abandoned):
        ``(C,)`` float distances (``inf`` where abandoned), ``(C,)`` int
        cells filled per candidate (counted up to the abandoned row, like
        the per-pair kernel), and a ``(C,)`` boolean abandonment mask.
    """
    xs = np.asarray(query, dtype=float)
    ys = np.asarray(candidates, dtype=float)
    if ys.ndim != 2:
        raise ValueError("candidates must be a (C, M) matrix")
    count, m = ys.shape
    n = xs.size
    inf = np.inf

    distances = np.full(count, inf)
    cells = np.zeros(count, dtype=np.int64)
    abandoned = np.zeros(count, dtype=bool)
    if count == 0:
        return distances, cells, abandoned

    # ``alive`` maps the rows still being computed back to their original
    # candidate indices; abandoned candidates are compacted out so their
    # rows stop being computed at all (each row's recurrence is
    # independent, so compaction cannot change the surviving values).
    alive = np.arange(count)
    ys_alive = ys
    prev_lo = prev_hi = -1
    prev_vals: Optional[np.ndarray] = None
    for i in range(n):
        lo = int(band[i, 0])
        hi = int(band[i, 1])
        width = hi - lo + 1
        cells[alive] += width
        row_cost = func(xs[i], ys_alive[:, lo: hi + 1])
        prefix = np.cumsum(row_cost, axis=1)
        if prev_vals is None:
            vals = prefix if lo == 0 else np.full((alive.size, width), inf)
        else:
            padded = np.full((alive.size, width + 1), inf)
            overlap_lo = max(lo - 1, prev_lo)
            overlap_hi = min(hi, prev_hi)
            if overlap_hi >= overlap_lo:
                padded[:, overlap_lo - (lo - 1): overlap_hi - (lo - 1) + 1] = (
                    prev_vals[:, overlap_lo - prev_lo: overlap_hi - prev_lo + 1]
                )
            diag_or_up = np.minimum(padded[:, :-1], padded[:, 1:])
            shifted = np.empty((alive.size, width))
            shifted[:, 0] = 0.0
            shifted[:, 1:] = prefix[:, :-1]
            vals = prefix + np.minimum.accumulate(diag_or_up - shifted, axis=1)
        if abandon_threshold is not None:
            exceeded = vals.min(axis=1) > abandon_cutoff(abandon_threshold)
            if exceeded.any():
                abandoned[alive[exceeded]] = True
                keep = ~exceeded
                if not keep.any():
                    return distances, cells, abandoned
                alive = alive[keep]
                ys_alive = ys_alive[keep]
                vals = vals[keep]
        prev_lo, prev_hi, prev_vals = lo, hi, vals

    if not (prev_lo <= m - 1 <= prev_hi):
        raise BandError(
            "band does not admit any warp path from (0, 0) to (n-1, m-1); "
            "use repair=True to bridge gaps"
        )
    final = prev_vals[:, m - 1 - prev_lo]
    if not np.isfinite(final).all():
        raise BandError(
            "band does not admit any warp path from (0, 0) to (n-1, m-1); "
            "use repair=True to bridge gaps"
        )
    distances[alive] = final
    return distances, cells, abandoned
