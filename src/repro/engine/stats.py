"""Per-query and aggregate accounting for the batch distance engine.

:class:`EngineStats` records, for one query (or merged across many), how
much work each stage of the pruning cascade performed and how much it
avoided.  The counters map directly onto the paper's cost model:

* ``cells_filled`` / ``total_cells`` is the paper's hardware-independent
  time-gain measure (Section 4.2): the fraction of DTW grid cells the
  engine actually evaluated.  Pruned candidates contribute their whole
  ``N*M`` grid to ``total_cells`` and nothing to ``cells_filled``, so the
  lower-bound cascade and the locally relevant bands compose in one number.
* ``extract_seconds`` / ``matching_seconds`` / ``dp_seconds`` reproduce the
  Figure 17 execution-time split (tasks (a), (b), (c) of Section 3.4);
  ``bound_seconds`` adds the engine's new stage-0 cost (computing LB_Kim /
  LB_Keogh bounds), which plays the same amortisable role as feature
  extraction.
* :meth:`time_gain` is the paper's relative time-gain criterion evaluated
  against a reference (e.g. the sequential full-DTW scan).

The telemetry layer (:mod:`repro.telemetry`) builds per-query traces and
aggregate Prometheus/JSON metrics directly from these records — stages
are accounted here once and never re-timed upstream.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List


@dataclass
class EngineStats:
    """Work accounting for a batch distance computation.

    Attributes
    ----------
    queries:
        Number of queries covered (1 for per-query stats; merged stats sum).
    candidates:
        Candidate pairs considered after exclusions.
    lb_kim_computed, lb_keogh_computed:
        How many constant-time LB_Kim and O(L) LB_Keogh bounds were
        evaluated.
    pruned_lb_kim, pruned_lb_keogh:
        Candidates discarded by each bound stage without running any DTW.
    dtw_abandoned:
        Refinements started but stopped early because the running row
        minimum exceeded the best-so-far k-th distance.
    dtw_computed:
        Refinements run to completion.
    cells_filled:
        DTW grid cells actually evaluated (including the partial rows of
        abandoned computations).
    total_cells:
        Grid cells a full-DTW scan over every candidate pair would have
        evaluated (``sum of N*M``).
    bound_seconds, extract_seconds, matching_seconds, dp_seconds:
        Wall-clock phase breakdown: lower-bound stage, salient-feature
        extraction (task (a)), feature matching + inconsistency pruning
        (task (b)), and dynamic programming (task (c)).
    elapsed_seconds:
        End-to-end wall-clock time of the batch call.
    """

    queries: int = 0
    candidates: int = 0
    lb_kim_computed: int = 0
    lb_keogh_computed: int = 0
    pruned_lb_kim: int = 0
    pruned_lb_keogh: int = 0
    dtw_abandoned: int = 0
    dtw_computed: int = 0
    cells_filled: int = 0
    total_cells: int = 0
    bound_seconds: float = 0.0
    extract_seconds: float = 0.0
    matching_seconds: float = 0.0
    dp_seconds: float = 0.0
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def pruned(self) -> int:
        """Candidates eliminated by the bound cascade (no DTW started)."""
        return self.pruned_lb_kim + self.pruned_lb_keogh

    @property
    def refined(self) -> int:
        """Candidates whose DTW refinement was started."""
        return self.dtw_computed + self.dtw_abandoned

    @property
    def prune_rate(self) -> float:
        """Fraction of candidates eliminated before any DTW work."""
        if self.candidates == 0:
            return 0.0
        return self.pruned / float(self.candidates)

    @property
    def cell_fraction(self) -> float:
        """Fraction of the full-scan grid work actually performed."""
        if self.total_cells == 0:
            return 0.0
        return self.cells_filled / float(self.total_cells)

    @property
    def cell_gain(self) -> float:
        """The paper's hardware-independent time gain: cells avoided."""
        return 1.0 - self.cell_fraction

    @property
    def compute_seconds(self) -> float:
        """Per-comparison cost (tasks (b) + (c)), matching Figure 17."""
        return self.matching_seconds + self.dp_seconds

    def time_gain(self, reference_seconds: float) -> float:
        """Relative wall-clock gain over a reference scan (Section 4.2)."""
        if reference_seconds <= 0.0:
            return 0.0
        return (reference_seconds - self.elapsed_seconds) / reference_seconds

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def merge(self, other: "EngineStats") -> "EngineStats":
        """Accumulate another stats record into this one (in place)."""
        for field in fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))
        return self

    @classmethod
    def merged(cls, items: List["EngineStats"]) -> "EngineStats":
        """Sum of several stats records.

        ``merged([])`` is the **zero record**: every counter and timer
        is 0 and every derived ratio (``prune_rate``, ``cell_fraction``,
        ``time_gain``) is a well-defined 0.0 rather than a division
        error.  Callers aggregating an empty cascade (no candidates, no
        batches) therefore never need to guard the empty case.
        """
        total = cls()
        for item in items:
            total.merge(item)
        return total

    def to_dict(self) -> dict:
        """JSON-friendly snapshot: raw fields plus the derived ratios."""
        payload = {field.name: getattr(self, field.name) for field in fields(self)}
        payload["pruned"] = self.pruned
        payload["refined"] = self.refined
        payload["prune_rate"] = self.prune_rate
        payload["cell_fraction"] = self.cell_fraction
        payload["cell_gain"] = self.cell_gain
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineStats":
        """Inverse of :meth:`to_dict` (the query-result wire schema).

        Only raw dataclass fields are read back; derived ratios present
        in the payload (``prune_rate``, ``cell_gain``, ...) are ignored
        and recomputed on access, so a tampered or stale payload cannot
        make the accounting inconsistent with itself.  Missing fields
        default to the zero record's values.
        """
        kwargs = {}
        for field in fields(cls):
            if field.name in payload:
                value = payload[field.name]
                kwargs[field.name] = (
                    float(value) if field.name.endswith("_seconds")
                    else int(value)
                )
        return cls(**kwargs)

    def cascade_rows(self) -> List[List[object]]:
        """Rows for a per-stage summary table (used by the CLI)."""
        return [
            ["candidates", self.candidates, ""],
            ["pruned by LB_Kim", self.pruned_lb_kim,
             f"{self.lb_kim_computed} bounds"],
            ["pruned by LB_Keogh", self.pruned_lb_keogh,
             f"{self.lb_keogh_computed} bounds"],
            ["DTW abandoned early", self.dtw_abandoned, ""],
            ["DTW completed", self.dtw_computed, ""],
            ["cells filled", self.cells_filled,
             f"{self.cell_fraction:.1%} of full scan"],
        ]
