"""Execution backends for the batch distance engine.

Three strategies orchestrate the same per-query cascade:

* ``serial`` — the transparent reference path: per-pair lower bounds and
  per-pair DTW kernels, one candidate at a time.
* ``vectorized`` — batched numpy lower bounds over the stacked collection
  and (for shared-band constraint families over equal-length collections)
  the lock-step batch DP kernel of :mod:`repro.engine.kernels`.
* ``multiprocessing`` — a process pool that fans whole queries out to
  workers; each worker runs the vectorised per-query path.  On platforms
  with ``fork`` the engine state (series matrix, envelopes, salient-feature
  caches) is inherited copy-on-write, so nothing is re-extracted or
  re-pickled per task; with ``spawn`` the state is shipped once per worker
  through the pool initializer.

All three produce identical distances and k-NN rankings; the equivalence
test suite (``tests/test_engine_equivalence.py``) enforces it.

Backends are agnostic to how the engine stores its collection: the
engine's prepared state is segmented (immutable per-segment arrays
shared structurally between derived serving snapshots, with tombstone
masks for removals), and every backend receives flat per-candidate
views gathered from the **live** slots only — a derived snapshot and a
from-scratch engine hand a backend byte-identical inputs.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Any, Callable, List, Optional, Sequence

from ..exceptions import ValidationError

BACKENDS = ("serial", "vectorized", "multiprocessing")

# Worker-side state installed by the pool initializer.  With the fork start
# method this is a reference into the parent's (copy-on-write) memory.
_WORKER_STATE: Any = None


def resolve_backend(name: Optional[str]) -> str:
    """Normalise and validate a backend name (default ``serial``)."""
    if name is None:
        return "serial"
    key = str(name).strip().lower()
    aliases = {
        "serial": "serial",
        "sequential": "serial",
        "vectorized": "vectorized",
        "vectorised": "vectorized",
        "numpy": "vectorized",
        "multiprocessing": "multiprocessing",
        "mp": "multiprocessing",
        "process": "multiprocessing",
    }
    try:
        return aliases[key]
    except KeyError as exc:
        raise ValidationError(
            f"unknown engine backend {name!r}; known backends: "
            f"{', '.join(BACKENDS)}"
        ) from exc


def default_num_workers() -> int:
    """Worker count when the caller does not specify one."""
    return max(1, os.cpu_count() or 1)


def _init_worker(state: Any) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _dispatch(task):
    func, payload = task
    return func(_WORKER_STATE, payload)


def run_parallel(
    state: Any,
    func: Callable[[Any, Any], Any],
    payloads: Sequence[Any],
    num_workers: Optional[int] = None,
) -> List[Any]:
    """Map ``func(state, payload)`` over payloads with a process pool.

    ``func`` must be a module-level callable (pickled by reference) and
    ``state`` must either survive a fork or be picklable (spawn fallback).
    With one worker (or one payload) the map degrades to an in-process
    loop, so callers need no special-casing.
    """
    items = list(payloads)
    workers = num_workers if num_workers is not None else default_num_workers()
    workers = max(1, min(int(workers), len(items))) if items else 1
    if workers == 1 or len(items) <= 1:
        return [func(state, payload) for payload in items]

    # Prefer copy-on-write sharing only where fork is actually safe: on
    # macOS fork is still *available* but unsafe with threaded numpy /
    # Accelerate (the platform default moved to spawn for a reason), so
    # everywhere except Linux we respect the platform default method.
    if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:
        context = multiprocessing.get_context()
    chunksize = max(1, len(items) // (workers * 4))
    with context.Pool(
        processes=workers, initializer=_init_worker, initargs=(state,)
    ) as pool:
        return pool.map(
            _dispatch, [(func, payload) for payload in items], chunksize=chunksize
        )
