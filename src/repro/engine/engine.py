"""The batch distance engine: cascaded pruning over a stored collection.

:class:`DistanceEngine` answers k-NN queries (and builds full distance
matrices) against a collection of stored series in one call, running a
three-stage pruning cascade per query:

1. **LB_Kim** — a constant-time bound from precomputed first/last/min/max
   profiles; candidates whose bound already exceeds the running k-th best
   distance are dropped before anything else is computed.
2. **LB_Keogh** — an O(L) envelope bound.  For the Sakoe–Chiba family over
   an equal-length collection the envelopes use the band's own radius (the
   classic admissible pairing from Keogh, VLDB 2002); for every other
   constraint family the engine falls back to the *global* envelope
   (min/max of the candidate), which lower-bounds the full DTW and hence
   every constrained DTW, keeping the cascade exact for all families.
3. **Early-abandoning banded DTW** — surviving candidates are refined in
   ascending-bound order; the dynamic program stops as soon as a whole row
   exceeds the best-so-far k-th distance.

Every stage is *admissible* (bounds never exceed the true constrained
distance, and abandonment only fires when the distance provably exceeds
the threshold), so the returned neighbours are identical to an exhaustive
scan — the property-based suite in ``tests/test_properties.py`` checks
exactly that.  Bounds are only enabled for the absolute-difference
pointwise distance they are derived for; other ground distances disable
stages 1–2 automatically (abandonment stays valid for any non-negative
pointwise distance).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series, check_int_at_least
from ..core.bands import parse_constraint_spec
from ..core.config import SDTWConfig
from ..core.sdtw import SDTW
from ..datasets.base import Dataset
from ..dtw.banded import banded_dtw
from ..dtw.constraints import full_band, itakura_band, sakoe_chiba_band_fraction
from ..dtw.distances import get_pointwise_distance
from ..dtw.lower_bounds import (
    keogh_envelope,
    kim_profile,
    lb_keogh,
    lb_kim,
    lb_kim_batch,
    lb_keogh_batch,
)
from ..exceptions import DatasetError, ValidationError
from .backends import default_num_workers, resolve_backend, run_parallel
from .kernels import banded_dtw_batch
from .stats import EngineStats

# Constraint families whose band depends only on the pair of lengths, so a
# single validated band can drive the batch DP kernel for every candidate.
_SHARED_BAND_CONSTRAINTS = ("full", "fc,fw", "itakura")

# Pointwise distances the LB_Kim / LB_Keogh derivations hold for.
_BOUNDABLE_DISTANCES = ("absolute", "manhattan")


def normalize_constraint(constraint: Union[str, object]) -> str:
    """Canonical engine constraint label.

    Accepts ``"full"``, ``"itakura"``, any sDTW constraint label or
    :class:`~repro.core.bands.ConstraintSpec`, and the usual aliases
    (``"sakoe-chiba"`` maps to ``"fc,fw"``).
    """
    if isinstance(constraint, str):
        key = constraint.strip().lower().replace(" ", "")
        if key == "full":
            return "full"
        if key == "itakura":
            return "itakura"
    try:
        return parse_constraint_spec(constraint).label
    except ValidationError as exc:
        raise ValidationError(f"{exc}; the engine additionally accepts "
                              f"'full' and 'itakura'") from exc


def _global_keogh_one(x: np.ndarray, y_min: float, y_max: float) -> float:
    """LB via the global envelope: mass of *x* outside ``[y_min, y_max]``.

    Admissible against the full DTW (every point of *x* is matched by at
    least one path step) and therefore against every constrained DTW.
    """
    above = np.maximum(x - y_max, 0.0)
    below = np.maximum(y_min - x, 0.0)
    return float(above.sum() + below.sum())


def _global_keogh_batch(
    x: np.ndarray, mins: np.ndarray, maxs: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`_global_keogh_one` against ``C`` candidates."""
    above = np.maximum(x[np.newaxis, :] - maxs[:, np.newaxis], 0.0)
    below = np.maximum(mins[:, np.newaxis] - x[np.newaxis, :], 0.0)
    return above.sum(axis=1) + below.sum(axis=1)


def cascade_bounds(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
) -> Tuple[float, float]:
    """The engine's cascading lower bounds for one pair.

    Returns ``(stage1, stage2)`` with ``stage1 <= stage2 <= DTW(x, y)``
    for the absolute-difference ground distance: stage 1 is LB_Kim and
    stage 2 sharpens it with the global-envelope LB_Keogh (the running
    maximum keeps the cascade monotone, which raw LB_Kim / LB_Keogh values
    alone do not guarantee).
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    stage1 = lb_kim(xs, ys)
    stage2 = max(stage1, _global_keogh_one(xs, float(ys.min()), float(ys.max())))
    return stage1, stage2


@dataclass(frozen=True)
class EngineHit:
    """One retrieved neighbour."""

    identifier: str
    index: int
    distance: float
    label: Optional[int] = None


@dataclass(frozen=True)
class QueryResult:
    """k-NN hits and work accounting for a single query."""

    hits: Tuple[EngineHit, ...]
    stats: EngineStats

    @property
    def indices(self) -> Tuple[int, ...]:
        return tuple(hit.index for hit in self.hits)

    @property
    def labels(self) -> List[Optional[int]]:
        return [hit.label for hit in self.hits]


@dataclass
class BatchKNNResult:
    """Result of a batch k-NN call.

    Attributes
    ----------
    results:
        One :class:`QueryResult` per query, in query order.
    elapsed_seconds:
        Wall-clock time of the whole batch (with the multiprocessing
        backend this is smaller than the sum of per-query times).
    """

    results: List[QueryResult]
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]

    @property
    def stats(self) -> EngineStats:
        """Per-query stats summed over the batch."""
        return EngineStats.merged([r.stats for r in self.results])

    def rankings(self) -> List[Tuple[int, ...]]:
        """Hit indices per query (the quantity equivalence tests compare)."""
        return [result.indices for result in self.results]


@dataclass
class BatchDistanceResult:
    """A (num_queries, collection_size) distance matrix plus accounting."""

    distances: np.ndarray
    stats: EngineStats


@dataclass
class _Stored:
    identifier: str
    values: np.ndarray
    label: Optional[int]


@dataclass(frozen=True)
class _PreparedSegment:
    """One immutable slice of the prepared collection caches.

    Segments are the unit of structural sharing between an engine and the
    engines derived from it via :meth:`DistanceEngine.extended`: a derived
    engine keeps its parent's segment objects untouched and appends one new
    segment holding only the caches of the added series, so deriving costs
    O(new) envelope/profile work instead of O(N).  Only the large per-sample
    arrays live here (the stacked series matrix and the tight LB_Keogh
    envelopes, each O(size x length)); the O(size) arrays are merged into
    :class:`_Prepared` at derivation time because copying them is cheap.
    """

    size: int
    matrix: Optional[np.ndarray]
    tight_upper: Optional[np.ndarray]
    tight_lower: Optional[np.ndarray]


def _merge_segments(left: _PreparedSegment, right: _PreparedSegment) -> _PreparedSegment:
    """Concatenate two adjacent segments (the binary-counter merge step)."""

    def _cat(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if a is None or b is None or a.shape[1:] != b.shape[1:]:
            return None
        return np.concatenate([a, b])

    return _PreparedSegment(
        size=left.size + right.size,
        matrix=_cat(left.matrix, right.matrix),
        tight_upper=_cat(left.tight_upper, right.tight_upper),
        tight_lower=_cat(left.tight_lower, right.tight_lower),
    )


@dataclass
class _Prepared:
    """Per-collection caches built once and shared by every query.

    The O(N)-sized arrays (lengths, Kim profiles, min/max, identifier map)
    are stored merged; the O(N x L) arrays are split across ``segments`` so
    derived engines can share them structurally (see :class:`_PreparedSegment`).
    """

    lengths: np.ndarray
    equal_length: bool
    profiles: np.ndarray
    mins: np.ndarray
    maxs: np.ndarray
    segments: Tuple[_PreparedSegment, ...] = ()
    seg_starts: np.ndarray = field(default_factory=lambda: np.zeros(1, dtype=int))
    tight_radius: Optional[int] = None
    # Every index stored under an identifier: duplicates must all be
    # excluded by leave-one-out queries, like the sequential engine did.
    indices_of: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def has_matrix(self) -> bool:
        return bool(self.segments) and all(s.matrix is not None for s in self.segments)

    @property
    def has_tight(self) -> bool:
        return (
            self.tight_radius is not None
            and bool(self.segments)
            and all(s.tight_upper is not None for s in self.segments)
        )

    def _segment_of(self, indices: np.ndarray) -> np.ndarray:
        return np.searchsorted(self.seg_starts, indices, side="right") - 1

    def _gather(self, indices, member: str) -> np.ndarray:
        """Gather rows of a segmented O(N x L) cache for the given slots."""
        idx = np.asarray(indices, dtype=int)
        if len(self.segments) == 1:
            return getattr(self.segments[0], member)[idx]
        first = getattr(self.segments[0], member)
        out = np.empty((idx.size,) + first.shape[1:], dtype=first.dtype)
        seg_ids = self._segment_of(idx)
        for s in np.unique(seg_ids):
            rows = seg_ids == s
            local = idx[rows] - int(self.seg_starts[s])
            out[rows] = getattr(self.segments[int(s)], member)[local]
        return out

    def matrix_rows(self, indices) -> np.ndarray:
        """Stacked series values of the given slots (equal-length only)."""
        return self._gather(indices, "matrix")

    def tight_rows(self, indices) -> Tuple[np.ndarray, np.ndarray]:
        """Tight LB_Keogh envelopes (upper, lower) of the given slots."""
        return self._gather(indices, "tight_upper"), self._gather(indices, "tight_lower")

    def tight_row_one(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Tight envelope of one slot (the serial cascade's hot accessor)."""
        if len(self.segments) == 1:
            seg = self.segments[0]
            return seg.tight_upper[index], seg.tight_lower[index]
        s = int(self._segment_of(np.array([index]))[0])
        local = index - int(self.seg_starts[s])
        seg = self.segments[s]
        return seg.tight_upper[local], seg.tight_lower[local]


class DistanceEngine:
    """Batch k-NN / distance-matrix computation with cascaded pruning.

    Every query's per-stage work accounting lands in an
    :class:`~repro.engine.stats.EngineStats` on the result; the
    telemetry layer (:mod:`repro.telemetry`) turns those records into
    per-query traces and aggregate Prometheus/JSON metrics without
    adding any timers to the cascade itself.

    Parameters
    ----------
    constraint:
        Constraint family of the refinement distance: ``"full"``,
        ``"fc,fw"`` (Sakoe–Chiba), ``"itakura"``, or any sDTW locally
        relevant family (``"fc,aw"``, ``"ac,fw"``, ``"ac,aw"``,
        ``"ac2,aw"``).
    config:
        sDTW configuration (band widths, descriptors, pointwise distance).
    backend:
        ``"serial"``, ``"vectorized"`` or ``"multiprocessing"`` (see
        :mod:`repro.engine.backends`).
    num_workers:
        Worker processes for the multiprocessing backend (default: CPU
        count).
    prune:
        Master switch for the lower-bound stages; ``False`` scans every
        candidate (early abandonment stays on unless also disabled).
    use_lb_kim, use_lb_keogh, early_abandon:
        Individual cascade-stage switches.
    itakura_max_slope:
        Slope parameter of the ``"itakura"`` constraint.
    batch_size:
        Chunk size of the vectorised refinement stage: candidates are
        refined in ascending-bound chunks of this size so the abandonment
        threshold tightens between chunks.
    """

    def __init__(
        self,
        constraint: str = "ac,aw",
        config: Optional[SDTWConfig] = None,
        *,
        backend: str = "serial",
        num_workers: Optional[int] = None,
        prune: bool = True,
        use_lb_kim: bool = True,
        use_lb_keogh: bool = True,
        early_abandon: bool = True,
        itakura_max_slope: float = 2.0,
        batch_size: int = 32,
    ) -> None:
        self.constraint = normalize_constraint(constraint)
        self.config = config if config is not None else SDTWConfig()
        self.backend = resolve_backend(backend)
        self.num_workers = num_workers
        self.use_lb_kim = bool(prune and use_lb_kim)
        self.use_lb_keogh = bool(prune and use_lb_keogh)
        self.early_abandon = bool(early_abandon)
        if itakura_max_slope <= 1.0:
            raise ValidationError("itakura_max_slope must be greater than 1")
        self.itakura_max_slope = float(itakura_max_slope)
        self.batch_size = check_int_at_least(batch_size, 1, "batch_size")
        self._sdtw = SDTW(self.config)
        self._stored: List[_Stored] = []
        self._prepared: Optional[_Prepared] = None
        # Tombstone mask over stored slots (None: every slot is live).
        # Derived engines mark removals here instead of re-packing the
        # collection, so old snapshots keep serving their slots untouched.
        self._alive: Optional[np.ndarray] = None
        distance_name = self.config.pointwise_distance
        self._bounds_admissible = (
            isinstance(distance_name, str)
            and distance_name.strip().lower() in _BOUNDABLE_DISTANCES
        )

    # ------------------------------------------------------------------ #
    # Collection management
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._stored)

    def add(
        self,
        values: Union[Sequence[float], np.ndarray],
        identifier: Optional[str] = None,
        label: Optional[int] = None,
    ) -> str:
        """Add one series to the collection; returns its identifier.

        Auto-generated identifiers skip names already in use, so an
        explicit identifier can never be silently aliased (exclusion is
        identifier-keyed).  Explicitly repeating an identifier is allowed
        and excludes every copy, like the sequential engine.
        """
        array = as_series(values, "values")
        if identifier is None:
            counter = len(self._stored)
            taken = {s.identifier for s in self._stored}
            identifier = f"series-{counter:05d}"
            while identifier in taken:
                counter += 1
                identifier = f"series-{counter:05d}"
        self._stored.append(_Stored(identifier=identifier, values=array, label=label))
        if self._alive is not None:
            self._alive = np.append(self._alive, True)
        self._prepared = None
        return identifier

    def add_dataset(self, dataset: Dataset) -> List[str]:
        """Add every series of a data set (labels preserved).

        Returns the stored identifiers in insertion order, so callers can
        build leave-one-out exclusion lists without re-deriving the
        defaulting scheme.
        """
        identifiers = []
        for index, ts in enumerate(dataset):
            identifier = ts.identifier or f"{dataset.name}-{index:04d}"
            identifiers.append(
                self.add(ts.values, identifier=identifier, label=ts.label)
            )
        return identifiers

    @classmethod
    def from_dataset(cls, dataset: Dataset, *args, **kwargs) -> "DistanceEngine":
        """Build an engine over a data set in one call."""
        engine = cls(*args, **kwargs)
        engine.add_dataset(dataset)
        return engine

    def stored_items(self) -> List[Tuple[str, np.ndarray, Optional[int]]]:
        """The live collection as ``(identifier, values, label)`` tuples.

        The public accessor consumers (CLI, benchmarks, the indexing
        subsystem) use to replay stored series as queries or enumerate
        the collection, instead of depending on the engine's internal
        storage layout.  On a derived engine tombstoned slots are skipped,
        so the listing always matches what queries can return.
        """
        if self._alive is None:
            return [(s.identifier, s.values, s.label) for s in self._stored]
        return [
            (s.identifier, s.values, s.label)
            for i, s in enumerate(self._stored)
            if self._alive[i]
        ]

    @property
    def num_live(self) -> int:
        """Live (non-tombstoned) series count; equals ``len(self)`` on
        engines that were never derived with removals."""
        if self._alive is None:
            return len(self._stored)
        return int(self._alive.sum())

    @property
    def alive_mask(self) -> Optional[np.ndarray]:
        """The tombstone mask over stored slots (``None``: all live).

        Callers must treat the array as read-only; it is shared with the
        query path.
        """
        return self._alive

    @property
    def dead_fraction(self) -> float:
        """Fraction of stored slots that are tombstoned."""
        if not self._stored or self._alive is None:
            return 0.0
        return 1.0 - float(self._alive.sum()) / len(self._stored)

    def slot_of(self, identifier: str) -> int:
        """The stored slot of the live series under *identifier*.

        With duplicated identifiers the most recently added live slot is
        returned (the serving layer forbids duplicates, so this is exact
        there).
        """
        self.prepare()
        if self._prepared is None:
            raise DatasetError("the distance engine contains no series")
        for index in reversed(self._prepared.indices_of.get(identifier, ())):
            if self._alive is None or self._alive[index]:
                return int(index)
        raise DatasetError(f"no live series stored under {identifier!r}")

    # ------------------------------------------------------------------ #
    # Preparation (amortised one-time work, Section 3.4 of the paper)
    # ------------------------------------------------------------------ #
    @property
    def _needs_alignment(self) -> bool:
        if self.constraint in ("full", "itakura"):
            return False
        spec = parse_constraint_spec(self.constraint)
        return spec.core == "adaptive" or spec.width == "adaptive"

    def prepare(self) -> None:
        """Build the per-collection caches (profiles, envelopes, features).

        Called automatically by :meth:`knn` / :meth:`distance_matrix`;
        exposed so the one-time cost can be paid (and measured) up front.
        """
        if self._prepared is not None or not self._stored:
            return
        lengths = np.array([s.values.size for s in self._stored], dtype=int)
        equal_length = bool(lengths.size and (lengths == lengths[0]).all())
        profiles = np.stack([kim_profile(s.values) for s in self._stored])
        mins = np.array([float(s.values.min()) for s in self._stored])
        maxs = np.array([float(s.values.max()) for s in self._stored])
        indices_of: Dict[str, Tuple[int, ...]] = {}
        for i, stored in enumerate(self._stored):
            indices_of[stored.identifier] = indices_of.get(stored.identifier, ()) + (i,)
        tight_radius = self._tight_radius(int(lengths[0])) if equal_length else None
        segment = self._build_segment(
            [s.values for s in self._stored],
            equal_length=equal_length,
            tight_radius=tight_radius,
        )
        self._prepared = _Prepared(
            lengths=lengths,
            equal_length=equal_length,
            profiles=profiles,
            mins=mins,
            maxs=maxs,
            segments=(segment,),
            seg_starts=np.zeros(1, dtype=int),
            tight_radius=tight_radius if segment.tight_upper is not None else None,
            indices_of=indices_of,
        )
        if self._needs_alignment:
            # Salient features are a one-time, per-series cost; extracting
            # them here lets multiprocessing workers inherit a warm cache.
            for stored in self._stored:
                self._sdtw.extract_features(stored.values)

    def _tight_radius(self, length: int) -> Optional[int]:
        """The tight LB_Keogh envelope radius, when the family supports it."""
        if self.constraint != "fc,fw":
            return None
        # One more sample than the band's half-width, so floor/ceil
        # rounding in the band builder can never break admissibility.
        return max(1, int(round(self.config.width_fraction * length / 2.0))) + 1

    def _build_segment(
        self,
        values: Sequence[np.ndarray],
        *,
        equal_length: bool,
        tight_radius: Optional[int],
    ) -> _PreparedSegment:
        """Compute one segment's O(size x length) caches from raw series."""
        matrix = np.stack(values) if equal_length else None
        tight_upper = tight_lower = None
        if tight_radius is not None and equal_length:
            envelopes = [keogh_envelope(v, tight_radius) for v in values]
            tight_upper = np.stack([e[0] for e in envelopes])
            tight_lower = np.stack([e[1] for e in envelopes])
        return _PreparedSegment(
            size=len(values),
            matrix=matrix,
            tight_upper=tight_upper,
            tight_lower=tight_lower,
        )

    def extended(
        self,
        added: Sequence[Tuple[Union[Sequence[float], np.ndarray], str, Optional[int]]] = (),
        *,
        removed_identifiers: Sequence[str] = (),
    ) -> "DistanceEngine":
        """Derive a new prepared engine in O(new) work, sharing this one.

        The derived engine reuses this engine's prepared segments (Kim
        profiles, tight envelopes, stacked values) untouched, appends one
        freshly computed segment for *added* series (``(values,
        identifier, label)`` tuples), and tombstones *removed_identifiers*
        in its own liveness mask — this engine is never mutated, so
        readers holding it keep serving bit-identical results.  Adjacent
        small segments are merged binary-counter style, which keeps the
        segment count O(log N) and the amortised merge cost O(1) copies
        per added series.
        """
        self._require_collection()
        self.prepare()
        prep = self._prepared
        stored = list(self._stored)
        alive = (
            np.ones(len(stored), dtype=bool)
            if self._alive is None
            else self._alive.copy()
        )
        for identifier in removed_identifiers:
            slots = [
                i for i in prep.indices_of.get(identifier, ()) if alive[i]
            ]
            if not slots:
                raise DatasetError(f"no live series stored under {identifier!r}")
            for slot in slots:
                alive[slot] = False

        new_stored = []
        for values, identifier, label in added:
            if identifier is None:
                raise ValidationError(
                    "extended() requires explicit identifiers for added series"
                )
            new_stored.append(
                _Stored(
                    identifier=identifier,
                    values=as_series(values, "values"),
                    label=label,
                )
            )

        derived = DistanceEngine(
            self.constraint,
            self.config,
            backend=self.backend,
            num_workers=self.num_workers,
            use_lb_kim=self.use_lb_kim,
            use_lb_keogh=self.use_lb_keogh,
            early_abandon=self.early_abandon,
            itakura_max_slope=self.itakura_max_slope,
            batch_size=self.batch_size,
        )
        derived._sdtw = self._sdtw  # share the salient-feature cache
        derived._stored = stored + new_stored
        derived._alive = np.concatenate(
            [alive, np.ones(len(new_stored), dtype=bool)]
        )

        if not new_stored:
            derived._prepared = _Prepared(
                lengths=prep.lengths,
                equal_length=prep.equal_length,
                profiles=prep.profiles,
                mins=prep.mins,
                maxs=prep.maxs,
                segments=prep.segments,
                seg_starts=prep.seg_starts,
                tight_radius=prep.tight_radius,
                indices_of=prep.indices_of,
            )
            return derived

        new_values = [s.values for s in new_stored]
        new_lengths = np.array([v.size for v in new_values], dtype=int)
        lengths = np.concatenate([prep.lengths, new_lengths])
        equal_length = bool((lengths == lengths[0]).all())
        seg_equal = bool((new_lengths == new_lengths[0]).all())
        # The new segment gets tight envelopes only when it stays
        # compatible with the parent's (same radius, same length), so
        # the all-segments-tight invariant of ``_Prepared.has_tight``
        # holds by construction.
        tight_radius = prep.tight_radius if equal_length else None
        segment = self._build_segment(
            new_values,
            equal_length=seg_equal and equal_length,
            tight_radius=tight_radius,
        )
        segments = prep.segments + (segment,)
        while len(segments) >= 2 and segments[-2].size <= 2 * segments[-1].size:
            segments = segments[:-2] + (_merge_segments(segments[-2], segments[-1]),)
        sizes = np.array([s.size for s in segments], dtype=int)
        seg_starts = np.concatenate([[0], np.cumsum(sizes[:-1])])

        indices_of = dict(prep.indices_of)
        base = len(stored)
        for offset, item in enumerate(new_stored):
            indices_of[item.identifier] = indices_of.get(item.identifier, ()) + (
                base + offset,
            )
        derived._prepared = _Prepared(
            lengths=lengths,
            equal_length=equal_length,
            profiles=np.concatenate(
                [prep.profiles, np.stack([kim_profile(v) for v in new_values])]
            ),
            mins=np.concatenate(
                [prep.mins, np.array([float(v.min()) for v in new_values])]
            ),
            maxs=np.concatenate(
                [prep.maxs, np.array([float(v.max()) for v in new_values])]
            ),
            segments=segments,
            seg_starts=seg_starts,
            tight_radius=(
                tight_radius if segment.tight_upper is not None else None
            ),
            indices_of=indices_of,
        )
        if self._needs_alignment:
            for item in new_stored:
                self._sdtw.extract_features(item.values)
        return derived

    # ------------------------------------------------------------------ #
    # Constraint plumbing
    # ------------------------------------------------------------------ #
    def _shared_band(self, n: int, m: int) -> Optional[np.ndarray]:
        """The constraint band when it depends only on the grid shape."""
        if self.constraint == "full":
            return full_band(n, m)
        if self.constraint == "fc,fw":
            return sakoe_chiba_band_fraction(n, m, self.config.width_fraction)
        if self.constraint == "itakura":
            return itakura_band(n, m, self.itakura_max_slope)
        return None

    def _refine(
        self,
        query: np.ndarray,
        stored: _Stored,
        threshold: Optional[float],
        band: Optional[np.ndarray] = None,
    ) -> Tuple[float, int, bool, float, float, float]:
        """One refinement: ``(distance, cells, abandoned, extract, match, dp)``."""
        if band is None:
            band = self._shared_band(query.size, stored.values.size)
        if band is not None:
            start = time.perf_counter()
            result = banded_dtw(
                query, stored.values, band, self.config.pointwise_distance,
                return_path=False, abandon_threshold=threshold,
            )
            dp_seconds = time.perf_counter() - start
            return (result.distance, result.cells_filled, result.abandoned,
                    0.0, 0.0, dp_seconds)
        result = self._sdtw.distance(
            query, stored.values, self.constraint, abandon_threshold=threshold
        )
        return (result.distance, result.cells_filled, result.abandoned,
                result.extract_seconds, result.matching_seconds,
                result.dp_seconds)

    def _keogh_tight_applicable(self, n: int) -> bool:
        prep = self._prepared
        return (
            prep is not None
            and prep.has_tight
            and prep.equal_length
            and n == int(prep.lengths[0])
        )

    def _keogh_bound_one(self, query: np.ndarray, index: int) -> float:
        prep = self._prepared
        if self._keogh_tight_applicable(query.size):
            return lb_keogh(
                query, self._stored[index].values, prep.tight_radius,
                envelope=prep.tight_row_one(index),
            )
        return _global_keogh_one(
            query, float(prep.mins[index]), float(prep.maxs[index])
        )

    def _keogh_bounds_batch(
        self, query: np.ndarray, subset: Optional[np.ndarray] = None
    ) -> np.ndarray:
        prep = self._prepared
        if self._keogh_tight_applicable(query.size):
            if subset is not None:
                upper, lower = prep.tight_rows(subset)
                return lb_keogh_batch(query, upper, lower)
            parts = [
                lb_keogh_batch(query, seg.tight_upper, seg.tight_lower)
                for seg in prep.segments
            ]
            return parts[0] if len(parts) == 1 else np.concatenate(parts)
        if subset is not None:
            return _global_keogh_batch(
                query, prep.mins[subset], prep.maxs[subset]
            )
        return _global_keogh_batch(query, prep.mins, prep.maxs)

    # ------------------------------------------------------------------ #
    # The per-query cascade
    # ------------------------------------------------------------------ #
    def _run_query(
        self,
        query: np.ndarray,
        k: int,
        exclude_indices: Tuple[int, ...],
        mode: str,
        candidate_indices: Optional[Sequence[int]] = None,
    ) -> QueryResult:
        prep = self._prepared
        started = time.perf_counter()
        stats = EngineStats(queries=1)
        n = query.size
        excluded = set(exclude_indices)
        alive = self._alive
        if candidate_indices is None:
            include = np.array(
                [
                    i
                    for i in range(len(self._stored))
                    if i not in excluded and (alive is None or alive[i])
                ],
                dtype=int,
            )
        else:
            # The re-rank hook: scan only the given stored indices (the
            # indexing subsystem's candidate set).  The cascade and all
            # tie-breaking stay identical to a full scan over the subset.
            candidates = np.unique(np.asarray(candidate_indices, dtype=int))
            if candidates.size and (
                candidates[0] < 0 or candidates[-1] >= len(self._stored)
            ):
                raise ValidationError(
                    "candidate_indices contains out-of-range stored indices"
                )
            include = np.array(
                [
                    i
                    for i in candidates.tolist()
                    if i not in excluded and (alive is None or alive[i])
                ],
                dtype=int,
            )
        stats.candidates = int(include.size)
        stats.total_cells = int(n * prep.lengths[include].sum())

        use_kim = self.use_lb_kim and self._bounds_admissible
        use_keogh = self.use_lb_keogh and self._bounds_admissible
        lazy_keogh = mode == "serial" and use_kim and use_keogh

        # With a candidate restriction the bounds are only computed over
        # the included subset (scattered back into full-size vectors so
        # the cascade below stays index-addressed); an unrestricted scan
        # keeps the cheaper dense-batch path.
        restricted = candidate_indices is not None
        bound_start = time.perf_counter()
        kim_all: Optional[np.ndarray] = None
        keogh_all: Optional[np.ndarray] = None
        if use_kim:
            if restricted:
                kim_all = np.zeros(len(self._stored))
                if include.size:
                    kim_all[include] = lb_kim_batch(
                        kim_profile(query), prep.profiles[include]
                    )
            else:
                kim_all = lb_kim_batch(kim_profile(query), prep.profiles)
            stats.lb_kim_computed = int(include.size)
        if use_keogh and not lazy_keogh:
            if restricted:
                keogh_all = np.zeros(len(self._stored))
                if include.size:
                    keogh_all[include] = self._keogh_bounds_batch(
                        query, subset=include
                    )
            elif mode == "serial":
                keogh_all = np.array(
                    [self._keogh_bound_one(query, i) for i in range(len(self._stored))]
                )
            else:
                keogh_all = self._keogh_bounds_batch(query)
            stats.lb_keogh_computed = int(include.size)
        if kim_all is not None and keogh_all is not None:
            bound_all = np.maximum(kim_all, keogh_all)
        elif kim_all is not None:
            bound_all = kim_all
        elif keogh_all is not None:
            bound_all = keogh_all
        else:
            bound_all = np.zeros(len(self._stored))
        stats.bound_seconds += time.perf_counter() - bound_start

        # Ascending bound, index as the deterministic tie-break.
        order = include[np.lexsort((include, bound_all[include]))]

        kept: List[Tuple[float, int]] = []
        worst = np.inf

        def prune_remaining(position: int) -> None:
            for j in order[position:]:
                if kim_all is not None and kim_all[j] > worst:
                    stats.pruned_lb_kim += 1
                elif keogh_all is not None:
                    stats.pruned_lb_keogh += 1
                else:
                    stats.pruned_lb_kim += 1

        def absorb(distance: float, index: int) -> None:
            nonlocal worst
            kept.append((float(distance), int(index)))
            kept.sort()
            if len(kept) > k:
                kept.pop()
            if len(kept) == k:
                worst = kept[-1][0]

        band = self._shared_band(n, int(prep.lengths[0])) if prep.equal_length else None
        use_batch_dp = mode == "vectorized" and band is not None

        position = 0
        while position < order.size:
            limit = worst if len(kept) == k else np.inf
            if bound_all[order[position]] > limit:
                prune_remaining(position)
                break
            if use_batch_dp:
                stop = min(position + self.batch_size, order.size)
                chunk: List[int] = []
                for t in range(position, stop):
                    if bound_all[order[t]] > limit:
                        break
                    chunk.append(int(order[t]))
                threshold = limit if (self.early_abandon and np.isfinite(limit)) else None
                dp_start = time.perf_counter()
                dists, cell_counts, abandoned_mask = banded_dtw_batch(
                    query, prep.matrix_rows(chunk), band,
                    get_pointwise_distance(self.config.pointwise_distance),
                    threshold,
                )
                stats.dp_seconds += time.perf_counter() - dp_start
                stats.cells_filled += int(cell_counts.sum())
                for offset, index in enumerate(chunk):
                    if abandoned_mask[offset]:
                        stats.dtw_abandoned += 1
                    else:
                        stats.dtw_computed += 1
                        absorb(dists[offset], index)
                position += len(chunk)
                continue

            index = int(order[position])
            position += 1
            if lazy_keogh:
                bound_start = time.perf_counter()
                keogh_bound = self._keogh_bound_one(query, index)
                stats.lb_keogh_computed += 1
                stats.bound_seconds += time.perf_counter() - bound_start
                if len(kept) == k and keogh_bound > worst:
                    stats.pruned_lb_keogh += 1
                    continue
            threshold = (
                worst if (self.early_abandon and len(kept) == k) else None
            )
            distance, cells, was_abandoned, extract_s, match_s, dp_s = self._refine(
                query, self._stored[index], threshold, band=band
            )
            stats.cells_filled += cells
            stats.extract_seconds += extract_s
            stats.matching_seconds += match_s
            stats.dp_seconds += dp_s
            if was_abandoned:
                stats.dtw_abandoned += 1
                continue
            stats.dtw_computed += 1
            absorb(distance, index)

        hits = tuple(
            EngineHit(
                identifier=self._stored[index].identifier,
                index=index,
                distance=distance,
                label=self._stored[index].label,
            )
            for distance, index in kept
        )
        stats.elapsed_seconds = time.perf_counter() - started
        return QueryResult(hits=hits, stats=stats)

    def _matrix_row(self, query: np.ndarray, mode: str) -> Tuple[np.ndarray, EngineStats]:
        """All distances from one query to the collection (no pruning)."""
        prep = self._prepared
        started = time.perf_counter()
        stats = EngineStats(queries=1)
        count = len(self._stored)
        stats.candidates = count
        n = query.size
        stats.total_cells = int(n * prep.lengths.sum())
        row = np.empty(count)
        band = self._shared_band(n, int(prep.lengths[0])) if prep.equal_length else None
        if mode == "vectorized" and band is not None:
            dp_start = time.perf_counter()
            parts = []
            pointwise = get_pointwise_distance(self.config.pointwise_distance)
            for seg in prep.segments:
                seg_row, cell_counts, _ = banded_dtw_batch(
                    query, seg.matrix, band, pointwise, None,
                )
                parts.append(seg_row)
                stats.cells_filled += int(cell_counts.sum())
            row = parts[0] if len(parts) == 1 else np.concatenate(parts)
            stats.dp_seconds += time.perf_counter() - dp_start
            stats.dtw_computed += count
        else:
            for index, stored in enumerate(self._stored):
                distance, cells, _, extract_s, match_s, dp_s = self._refine(
                    query, stored, None, band=band
                )
                row[index] = distance
                stats.cells_filled += cells
                stats.extract_seconds += extract_s
                stats.matching_seconds += match_s
                stats.dp_seconds += dp_s
                stats.dtw_computed += 1
        stats.elapsed_seconds = time.perf_counter() - started
        return row, stats

    # ------------------------------------------------------------------ #
    # Public batch API
    # ------------------------------------------------------------------ #
    def _require_collection(self) -> None:
        if not self._stored:
            raise DatasetError("the distance engine contains no series")

    def _exclude_indices(self, identifier: Optional[str]) -> Tuple[int, ...]:
        if identifier is None:
            return ()
        return self._prepared.indices_of.get(identifier, ())

    def knn(
        self,
        queries: Sequence[Union[Sequence[float], np.ndarray]],
        k: int = 5,
        *,
        exclude_identifiers: Optional[Sequence[Optional[str]]] = None,
        candidate_indices: Optional[Sequence[Optional[Sequence[int]]]] = None,
        backend: Optional[str] = None,
    ) -> BatchKNNResult:
        """k nearest stored series for every query, in one batch call.

        Parameters
        ----------
        queries:
            The query series.
        k:
            Neighbours per query.
        exclude_identifiers:
            Optional per-query identifier to skip (leave-one-out
            evaluations); must have one entry per query when given.
        candidate_indices:
            Optional per-query restriction to a subset of stored indices
            (the indexing subsystem's re-rank hook); ``None`` entries
            scan the whole collection.  Must have one entry per query
            when given.
        backend:
            Per-call execution-backend override (results are identical
            across backends; the equivalence suite pins that down).  The
            serving layer uses this to run coalesced micro-batches
            through the vectorised batch kernels while interactive
            single queries keep the engine's configured backend.
        """
        self._require_collection()
        self.prepare()
        active_backend = (
            self.backend if backend is None else resolve_backend(backend)
        )
        k = check_int_at_least(k, 1, "k")
        arrays = [as_series(q, f"queries[{i}]") for i, q in enumerate(queries)]
        if exclude_identifiers is None:
            excludes: List[Optional[str]] = [None] * len(arrays)
        else:
            excludes = list(exclude_identifiers)
            if len(excludes) != len(arrays):
                raise ValidationError(
                    "exclude_identifiers must have one entry per query"
                )
        if candidate_indices is None:
            restrictions: List[Optional[Sequence[int]]] = [None] * len(arrays)
        else:
            restrictions = list(candidate_indices)
            if len(restrictions) != len(arrays):
                raise ValidationError(
                    "candidate_indices must have one entry per query"
                )
        payloads = [
            (qi, arrays[qi], k, self._exclude_indices(excludes[qi]),
             restrictions[qi])
            for qi in range(len(arrays))
        ]
        started = time.perf_counter()
        if active_backend == "multiprocessing" and len(payloads) > 1:
            workers = (
                self.num_workers if self.num_workers is not None
                else default_num_workers()
            )
            outcomes = run_parallel(self, _knn_query_task, payloads, workers)
        else:
            mode = "serial" if active_backend == "serial" else "vectorized"
            outcomes = [
                (qi, self._run_query(query, k, exclude, mode, candidates))
                for qi, query, k, exclude, candidates in payloads
            ]
        ordered = [result for _, result in sorted(outcomes, key=lambda item: item[0])]
        return BatchKNNResult(
            results=ordered, elapsed_seconds=time.perf_counter() - started
        )

    def query(
        self,
        values: Union[Sequence[float], np.ndarray],
        k: int = 5,
        *,
        exclude_identifier: Optional[str] = None,
        candidate_indices: Optional[Sequence[int]] = None,
    ) -> QueryResult:
        """Single-query convenience wrapper over :meth:`knn`."""
        batch = self.knn(
            [values], k,
            exclude_identifiers=[exclude_identifier],
            candidate_indices=[candidate_indices],
        )
        return batch.results[0]

    def distance_matrix(
        self,
        queries: Optional[Sequence[Union[Sequence[float], np.ndarray]]] = None,
    ) -> BatchDistanceResult:
        """Distances from every query to every stored series (no pruning).

        With ``queries=None`` the stored collection itself is used, giving
        the square constraint-distance matrix the experiments consume.
        """
        self._require_collection()
        if self._alive is not None and not bool(self._alive.all()):
            raise ValidationError(
                "distance_matrix is not available on a derived engine with "
                "tombstoned series; rebuild the engine over the live "
                "collection first"
            )
        self.prepare()
        if queries is None:
            arrays = [s.values for s in self._stored]
        else:
            arrays = [as_series(q, f"queries[{i}]") for i, q in enumerate(queries)]
        payloads = list(enumerate(arrays))
        started = time.perf_counter()
        if self.backend == "multiprocessing" and len(payloads) > 1:
            workers = (
                self.num_workers if self.num_workers is not None
                else default_num_workers()
            )
            outcomes = run_parallel(self, _matrix_row_task, payloads, workers)
        else:
            mode = "serial" if self.backend == "serial" else "vectorized"
            outcomes = [
                (qi, self._matrix_row(query, mode)) for qi, query in payloads
            ]
        rows: List[Optional[np.ndarray]] = [None] * len(arrays)
        stats = EngineStats()
        for qi, (row, row_stats) in outcomes:
            rows[qi] = row
            stats.merge(row_stats)
        stats.elapsed_seconds = time.perf_counter() - started
        stats.queries = len(arrays)
        return BatchDistanceResult(distances=np.stack(rows), stats=stats)


def _knn_query_task(engine: DistanceEngine, payload):
    """Multiprocessing task: run one query through the vectorised cascade."""
    qi, query, k, exclude_indices, candidate_indices = payload
    return qi, engine._run_query(
        query, k, exclude_indices, "vectorized", candidate_indices
    )


def _matrix_row_task(engine: DistanceEngine, payload):
    """Multiprocessing task: one full distance-matrix row."""
    qi, query = payload
    return qi, engine._matrix_row(query, "vectorized")
