"""Batch distance engine: cascading lower bounds + pluggable backends.

The paper's central claim is *time gain* — locally relevant sDTW bands
fill far fewer DTW cells than the full O(NM) grid — and that gain only
matters at retrieval scale, where one query is compared against thousands
of stored series.  This package turns the per-pair primitives of
:mod:`repro.dtw` and :mod:`repro.core` into a collection-level engine:

Cascade stages
--------------
Per query, candidates flow through three exact (admissible) stages, each
strictly cheaper than the next, in the spirit of the LB_Keogh cascades of
Keogh's VLDB 2002 lower-bounding work (reference [7] of the paper):

1. ``LB_Kim`` — constant-time per pair, from precomputed
   first/last/min/max profiles.
2. ``LB_Keogh`` — O(L) per pair, vectorised over the whole collection;
   uses band-matched envelopes for the Sakoe–Chiba family and the
   always-admissible global envelope for every other constraint family.
3. Early-abandoning banded DTW — refinement in ascending-bound order that
   stops a dynamic program as soon as a whole row exceeds the running
   k-th-best distance.

A candidate pruned at stage *s* never pays for stage *s+1*; because every
bound underestimates the true constrained distance and abandonment only
fires when the distance provably exceeds the threshold, the k-NN result is
identical to an exhaustive scan for **every** constraint family (``full``,
Sakoe–Chiba ``fc,fw``, ``itakura``, and the paper's ``fc,aw`` / ``ac,fw``
/ ``ac,aw`` / ``ac2,aw``).

Backend selection
-----------------
``DistanceEngine(backend=...)`` picks how the cascade executes:

* ``serial`` — per-pair reference path; transparent and allocation-light.
* ``vectorized`` — numpy-batched lower bounds, and for shared-band
  constraint families over equal-length collections a lock-step batch DP
  that advances one grid row for dozens of candidates per numpy call
  (bit-identical distances to the serial kernel).
* ``multiprocessing`` — whole queries fan out to worker processes (each
  running the vectorised path); series matrices, envelopes and
  salient-feature caches are shared copy-on-write via ``fork`` where
  available.

``EngineStats`` and the paper's time-gain measure
-------------------------------------------------
Every query returns an :class:`~repro.engine.stats.EngineStats` record:
``cells_filled / total_cells`` is exactly the paper's hardware-independent
time-gain measure (Section 4.2) extended to the retrieval setting — pruned
candidates avoid their entire grid — while ``extract_seconds`` /
``matching_seconds`` / ``dp_seconds`` reproduce the Figure 17 execution
time split (tasks (a)/(b)/(c)), with ``bound_seconds`` as the cascade's
stage-0 cost.  ``repro-sdtw engine`` prints these as a table, and
``benchmarks/bench_engine_scaling.py`` measures end-to-end speedups versus
the seed sequential scan.

See ``examples/batch_retrieval.py`` for a walkthrough.
"""

from .backends import BACKENDS, default_num_workers, resolve_backend
from .engine import (
    BatchDistanceResult,
    BatchKNNResult,
    DistanceEngine,
    EngineHit,
    QueryResult,
    cascade_bounds,
    normalize_constraint,
)
from .kernels import banded_dtw_batch
from .stats import EngineStats

__all__ = [
    "BACKENDS",
    "BatchDistanceResult",
    "BatchKNNResult",
    "DistanceEngine",
    "EngineHit",
    "EngineStats",
    "QueryResult",
    "banded_dtw_batch",
    "cascade_bounds",
    "default_num_workers",
    "normalize_constraint",
    "resolve_backend",
]
