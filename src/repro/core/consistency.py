"""Inconsistency pruning of matched salient-feature pairs.

Implements Section 3.2.2 of the paper.  Matched pairs may cross each other
in time (implying that the order of temporal features differs between the
two series), which contradicts the assumption that warping stretches time
but preserves feature order.  Pairs are therefore scored and committed
greedily, best first; a pair is kept only if inserting its scope boundaries
into the per-series boundary orderings leaves the start and end boundaries
at the *same rank* in both series (with the tie exception the paper notes).

Scores per pair ⟨f_i, f_j⟩:

* alignment score
  ``μ_align = ((scope(f_i) + scope(f_j)) / 2) / (1 + |center(f_i) − center(f_j)|)``
  — prefer large features whose centres are close in time;
* similarity score
  ``μ_sim = (μ_desc / μ_desc,min) × (1 − Δ_amp)``
  — prefer pairs with similar descriptors and similar average amplitudes;
* combined score: the F-measure (harmonic mean) of the two scores after
  normalising each by its maximum over all candidate pairs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..utils.stats import safe_divide
from .config import MatchingConfig
from .matching import MatchedPair


@dataclass(frozen=True)
class ScoredPair:
    """A matched pair together with its alignment/similarity/combined scores."""

    pair: MatchedPair
    alignment_score: float
    similarity_score: float
    combined_score: float


@dataclass(frozen=True)
class ConsistentAlignment:
    """The outcome of inconsistency pruning.

    Attributes
    ----------
    pairs:
        The retained (temporally consistent) matched pairs, ordered by the
        position of the first series' feature.
    scored_pairs:
        All candidate pairs with their scores, in the order they were
        considered (descending combined score) — useful for diagnostics
        and for the ablation benchmarks.
    boundaries_x, boundaries_y:
        The committed scope boundaries for each series, sorted in time.
        Boundary ``k`` of the first series corresponds to boundary ``k`` of
        the second series.
    """

    pairs: Tuple[MatchedPair, ...]
    scored_pairs: Tuple[ScoredPair, ...]
    boundaries_x: Tuple[float, ...]
    boundaries_y: Tuple[float, ...]

    @property
    def num_pairs(self) -> int:
        """Number of retained pairs."""
        return len(self.pairs)


def amplitude_percentage_difference(pair: MatchedPair) -> float:
    """Δ_amp: relative difference between the mean scope amplitudes of a pair.

    Expressed as a fraction of the larger magnitude, clipped to [0, 1], so
    ``1 − Δ_amp`` stays a usable multiplicative factor.
    """
    a = pair.feature_x.mean_amplitude
    b = pair.feature_y.mean_amplitude
    denom = max(abs(a), abs(b))
    if denom == 0:
        return 0.0
    return float(min(1.0, abs(a - b) / denom))


def score_pairs(pairs: Sequence[MatchedPair]) -> List[ScoredPair]:
    """Compute μ_align, μ_sim and the combined F-measure score for all pairs."""
    if not pairs:
        return []
    similarities = [pair.descriptor_similarity for pair in pairs]
    min_similarity = min(similarities)
    raw_align: List[float] = []
    raw_sim: List[float] = []
    for pair in pairs:
        scope_avg = (pair.feature_x.scope_length + pair.feature_y.scope_length) / 2.0
        align = scope_avg / (1.0 + pair.center_offset)
        sim = safe_divide(pair.descriptor_similarity, min_similarity, default=1.0)
        sim *= 1.0 - amplitude_percentage_difference(pair)
        raw_align.append(align)
        raw_sim.append(sim)
    max_align = max(raw_align) if max(raw_align) > 0 else 1.0
    max_sim = max(raw_sim) if max(raw_sim) > 0 else 1.0
    scored: List[ScoredPair] = []
    for pair, align, sim in zip(pairs, raw_align, raw_sim):
        ns_align = align / max_align
        ns_sim = sim / max_sim
        if ns_align + ns_sim == 0:
            combined = 0.0
        else:
            combined = 2.0 * ns_align * ns_sim / (ns_align + ns_sim)
        scored.append(
            ScoredPair(
                pair=pair,
                alignment_score=align,
                similarity_score=sim,
                combined_score=combined,
            )
        )
    return scored


class _BoundaryOrder:
    """Sorted list of committed scope boundaries for one series."""

    def __init__(self) -> None:
        self._values: List[float] = []

    def rank_of(self, value: float) -> int:
        """Rank (insertion index) the value would take in the current order."""
        return bisect.bisect_left(self._values, value)

    def has_value(self, value: float) -> bool:
        """True if an identical boundary value is already committed."""
        idx = bisect.bisect_left(self._values, value)
        return idx < len(self._values) and self._values[idx] == value

    def insert(self, value: float) -> None:
        bisect.insort(self._values, value)

    def values(self) -> Tuple[float, ...]:
        return tuple(self._values)


def _ranks_compatible(
    order_x: _BoundaryOrder,
    order_y: _BoundaryOrder,
    value_x: float,
    value_y: float,
) -> bool:
    """Check that inserting (value_x, value_y) keeps the two orders aligned.

    The ranks must be equal; as the paper notes, exact ties on existing
    boundary values are also accepted (the "special cases" exception),
    because an identical time value cannot introduce a crossing.
    """
    if order_x.rank_of(value_x) == order_y.rank_of(value_y):
        return True
    return order_x.has_value(value_x) and order_y.has_value(value_y)


def prune_inconsistent_pairs(
    pairs: Sequence[MatchedPair],
    config: Optional[MatchingConfig] = None,
) -> ConsistentAlignment:
    """Remove temporally inconsistent matched pairs.

    Pairs are committed greedily in descending order of their combined
    score; a pair is kept only if both its start boundaries and both its
    end boundaries can be inserted at matching ranks of the two per-series
    boundary orderings (no crossings), treating each pair's insertion
    atomically.

    Parameters
    ----------
    pairs:
        Candidate matched pairs from :func:`match_salient_features`.
    config:
        Matching configuration.  If ``prune_inconsistencies`` is False the
        pairs are only scored and returned unchanged (useful for the
        ablation study).

    Returns
    -------
    ConsistentAlignment
    """
    if config is None:
        config = MatchingConfig()
    scored = score_pairs(pairs)
    scored.sort(key=lambda sp: sp.combined_score, reverse=True)

    if not config.prune_inconsistencies:
        kept_all = tuple(sorted((sp.pair for sp in scored),
                                key=lambda p: p.feature_x.position))
        bx = tuple(sorted(
            b for p in kept_all
            for b in (p.feature_x.scope_start, p.feature_x.scope_end)
        ))
        by = tuple(sorted(
            b for p in kept_all
            for b in (p.feature_y.scope_start, p.feature_y.scope_end)
        ))
        return ConsistentAlignment(
            pairs=kept_all,
            scored_pairs=tuple(scored),
            boundaries_x=bx,
            boundaries_y=by,
        )

    order_x = _BoundaryOrder()
    order_y = _BoundaryOrder()
    kept: List[MatchedPair] = []
    for sp in scored:
        pair = sp.pair
        st_x, end_x = pair.feature_x.scope_start, pair.feature_x.scope_end
        st_y, end_y = pair.feature_y.scope_start, pair.feature_y.scope_end
        # Tentatively check the start boundary, then the end boundary given
        # the start has (virtually) been inserted.  Because both starts are
        # inserted before both ends and st <= end, checking the two
        # boundaries independently against the committed orders is
        # equivalent to the paper's sequential insertion attempt.
        if not _ranks_compatible(order_x, order_y, st_x, st_y):
            continue
        if not _ranks_compatible(order_x, order_y, end_x, end_y):
            continue
        # Additionally require that the start/end of this pair do not
        # straddle an existing committed boundary asymmetrically: the rank
        # of the end (after inserting the start) must also match.
        rank_end_x = order_x.rank_of(end_x) + (1 if st_x <= end_x else 0)
        rank_end_y = order_y.rank_of(end_y) + (1 if st_y <= end_y else 0)
        if rank_end_x != rank_end_y and not (
            order_x.has_value(end_x) and order_y.has_value(end_y)
        ):
            continue
        order_x.insert(st_x)
        order_x.insert(end_x)
        order_y.insert(st_y)
        order_y.insert(end_y)
        kept.append(pair)

    kept.sort(key=lambda p: p.feature_x.position)
    return ConsistentAlignment(
        pairs=tuple(kept),
        scored_pairs=tuple(scored),
        boundaries_x=order_x.values(),
        boundaries_y=order_y.values(),
    )
