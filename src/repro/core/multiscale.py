"""Combining sDTW with reduced-representation DTW (paper §1 and §2.1.4).

The paper notes that constraint-based pruning (its contribution) is
orthogonal to reduced-representation approaches such as FastDTW / iterative
deepening, and that the two "can naturally be implemented along" each
other.  This module provides that combination as an optional extension:

* the pair of series is reduced to a coarse resolution,
* the sDTW band is built (cheaply) at the coarse resolution from the
  coarse series' salient alignment,
* the coarse constrained warp path is projected back to full resolution
  and expanded by a small radius,
* that projected window is **intersected** with the full-resolution sDTW
  band, and the final banded dynamic program runs inside the intersection.

The result keeps the locally relevant shape of the sDTW band while
inheriting the extra pruning a multi-resolution pass provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import as_series, check_int_at_least
from ..dtw.banded import (
    BandedDTWResult,
    banded_dtw,
    intersect_bands,
    mask_to_band,
    validate_band,
)
from ..utils.preprocessing import resample_linear
from .config import SDTWConfig
from .sdtw import SDTW


@dataclass(frozen=True)
class MultiscaleSDTWResult:
    """Result of the combined multi-resolution + sDTW computation.

    Attributes
    ----------
    distance:
        The constrained DTW distance at full resolution.
    cells_filled:
        Grid cells filled by the final full-resolution dynamic program
        (excludes the much smaller coarse-level work).
    coarse_cells_filled:
        Grid cells filled at the coarse resolution.
    total_cells:
        Size of the full-resolution grid (``N * M``).
    band:
        The final (intersected) full-resolution band.
    """

    distance: float
    cells_filled: int
    coarse_cells_filled: int
    total_cells: int
    band: np.ndarray

    @property
    def cell_savings(self) -> float:
        """Fraction of the full grid not filled at full resolution."""
        if self.total_cells == 0:
            return 0.0
        return 1.0 - self.cells_filled / self.total_cells


def _project_path_band(
    path, coarse_n: int, coarse_m: int, n: int, m: int, radius: int
) -> np.ndarray:
    """Project a coarse warp path onto the full grid and dilate it."""
    mask = np.zeros((n, m), dtype=bool)
    row_scale = (n - 1) / max(coarse_n - 1, 1)
    col_scale = (m - 1) / max(coarse_m - 1, 1)
    for ci, cj in path:
        i = int(round(ci * row_scale))
        j = int(round(cj * col_scale))
        lo_i = max(0, i - radius)
        hi_i = min(n - 1, i + radius)
        lo_j = max(0, j - radius)
        hi_j = min(m - 1, j + radius)
        mask[lo_i: hi_i + 1, lo_j: hi_j + 1] = True
    mask[0, 0] = True
    mask[n - 1, m - 1] = True
    return mask_to_band(mask)


def multiscale_sdtw(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    constraint: str = "ac,aw",
    config: Optional[SDTWConfig] = None,
    *,
    reduction: int = 4,
    radius: int = 3,
    engine: Optional[SDTW] = None,
) -> MultiscaleSDTWResult:
    """Compute an sDTW distance with an additional multi-resolution pass.

    Parameters
    ----------
    x, y:
        The two time series.
    constraint:
        sDTW constraint family used at both resolutions.
    config:
        sDTW configuration (shared by both resolutions).
    reduction:
        Down-sampling factor of the coarse pass (>= 2).  The coarse series
        have ``ceil(len / reduction)`` samples.
    radius:
        Expansion radius (in full-resolution samples) applied to the
        projected coarse warp path.
    engine:
        Optional shared :class:`SDTW` engine (reuses its feature cache).

    Returns
    -------
    MultiscaleSDTWResult
    """
    xs = as_series(x, "x")
    ys = as_series(y, "y")
    reduction = check_int_at_least(reduction, 2, "reduction")
    radius = check_int_at_least(radius, 1, "radius")
    if engine is None:
        engine = SDTW(config)
    n, m = xs.size, ys.size

    coarse_n = max(8, int(np.ceil(n / reduction)))
    coarse_m = max(8, int(np.ceil(m / reduction)))
    coarse_x = resample_linear(xs, coarse_n)
    coarse_y = resample_linear(ys, coarse_m)

    # Coarse pass: sDTW band + constrained DP with path recovery.
    coarse_band, _ = engine.build_band(coarse_x, coarse_y, constraint)
    coarse_result: BandedDTWResult = banded_dtw(
        coarse_x, coarse_y, coarse_band, engine.config.pointwise_distance,
        return_path=True,
    )

    # Project the coarse path to the full grid and intersect with the
    # full-resolution sDTW band.
    projected = _project_path_band(
        coarse_result.path, coarse_n, coarse_m, n, m, radius
    )
    full_band, _ = engine.build_band(xs, ys, constraint)
    combined = validate_band(
        intersect_bands(projected, full_band), n, m, repair=True
    )

    final = banded_dtw(
        xs, ys, combined, engine.config.pointwise_distance, return_path=False
    )
    return MultiscaleSDTWResult(
        distance=final.distance,
        cells_filled=final.cells_filled,
        coarse_cells_filled=coarse_result.cells_filled,
        total_cells=n * m,
        band=final.band,
    )
