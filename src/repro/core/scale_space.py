"""1-D Gaussian scale space and difference-of-Gaussian (DoG) series.

This implements Step 1 of the paper's salient-feature search
(Section 3.1.2): the series is repeatedly smoothed with Gaussians whose σ
grows by a factor κ (with κ^s = 2) inside each octave; adjacent smoothed
versions are subtracted to obtain DoG series; at the end of each octave the
series is downsampled by keeping every second sample, doubling the
effective smoothing rate for the next octave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series
from ..utils.preprocessing import downsample_by_two, gaussian_smooth
from .config import ScaleSpaceConfig


@dataclass(frozen=True)
class ScaleLevel:
    """One difference-of-Gaussian level of the scale space.

    Attributes
    ----------
    octave:
        Octave index, 0-based.  Octave ``k`` works on the series
        downsampled ``k`` times (sampling step ``2**k``).
    level:
        Level index inside the octave, 0-based.
    sigma:
        The *absolute* smoothing scale of this level expressed in samples
        of the original series (i.e. already multiplied by the octave's
        sampling step).
    sampling_step:
        ``2**octave`` — the stride with which positions of this level map
        back to positions of the original series.
    smoothed:
        The series smoothed at this level's σ (in octave resolution).
    dog:
        Difference-of-Gaussian values ``L(·, κσ) − L(·, σ)`` (octave
        resolution).
    """

    octave: int
    level: int
    sigma: float
    sampling_step: int
    smoothed: np.ndarray
    dog: np.ndarray

    def to_original_position(self, index: int) -> float:
        """Map an index of this level back to a position in the original series."""
        return float(index * self.sampling_step)

    @property
    def length(self) -> int:
        """Number of samples at this level's resolution."""
        return int(self.dog.size)


@dataclass(frozen=True)
class ScaleSpace:
    """The full scale-space decomposition of one time series.

    Attributes
    ----------
    series:
        The original series.
    levels:
        All DoG levels, ordered by (octave, level).
    config:
        The configuration used to build the space.
    """

    series: np.ndarray
    levels: Tuple[ScaleLevel, ...]
    config: ScaleSpaceConfig

    @property
    def num_octaves(self) -> int:
        """Number of octaves actually built."""
        if not self.levels:
            return 0
        return max(level.octave for level in self.levels) + 1

    def levels_of_octave(self, octave: int) -> List[ScaleLevel]:
        """All DoG levels belonging to one octave, in level order."""
        return [lvl for lvl in self.levels if lvl.octave == octave]

    def sigma_range(self) -> Tuple[float, float]:
        """Smallest and largest absolute σ present in the space."""
        sigmas = [lvl.sigma for lvl in self.levels]
        return (min(sigmas), max(sigmas)) if sigmas else (0.0, 0.0)


def build_scale_space(
    series: Union[Sequence[float], np.ndarray],
    config: ScaleSpaceConfig = None,
) -> ScaleSpace:
    """Build the Gaussian scale space / DoG pyramid of a series.

    Parameters
    ----------
    series:
        The input time series (length N).
    config:
        Scale-space parameters; defaults to the paper's settings.

    Returns
    -------
    ScaleSpace

    Notes
    -----
    Within octave ``k`` we construct ``s + 1`` Gaussian-smoothed versions at
    σ, κσ, …, κ^s σ (in octave coordinates) and take the ``s`` successive
    differences; the absolute σ recorded for level ``l`` is
    ``base_sigma * κ^l * 2^k``.  The octave's base series is obtained by
    downsampling the previous octave's most-smoothed version by two, so the
    doubling of σ is realised partly by the downsampling itself, exactly as
    in SIFT.
    """
    if config is None:
        config = ScaleSpaceConfig()
    values = as_series(series, "series")
    n = values.size
    num_octaves = config.octaves_for_length(n)
    kappa = config.kappa
    s = config.levels_per_octave

    levels: List[ScaleLevel] = []
    octave_base = values.copy()
    for octave in range(num_octaves):
        step = 2 ** octave
        if octave_base.size < 4:
            break
        # Smoothed versions at sigma * kappa^l for l = 0..s (octave coordinates).
        smoothed_versions = []
        for lvl in range(s + 1):
            sigma_local = config.base_sigma * (kappa ** lvl)
            smoothed_versions.append(gaussian_smooth(octave_base, sigma_local))
        for lvl in range(s):
            dog = smoothed_versions[lvl + 1] - smoothed_versions[lvl]
            absolute_sigma = config.base_sigma * (kappa ** lvl) * step
            levels.append(
                ScaleLevel(
                    octave=octave,
                    level=lvl,
                    sigma=absolute_sigma,
                    sampling_step=step,
                    smoothed=smoothed_versions[lvl],
                    dog=dog,
                )
            )
        # Base of the next octave: the most-smoothed version, every 2nd sample.
        octave_base = downsample_by_two(smoothed_versions[-1])
    return ScaleSpace(series=values, levels=tuple(levels), config=config)


def classify_scale(level: ScaleLevel, num_octaves: int) -> str:
    """Classify a level as ``"fine"``, ``"medium"`` or ``"rough"``.

    The paper's Table 2 reports salient-point counts at three scale
    granularities.  We map the first octave to "fine", the last octave to
    "rough", and everything in between to "medium"; with fewer than three
    octaves the coarsest available octave is "rough" and (when present) the
    middle one is "medium".
    """
    if num_octaves <= 1:
        return "fine"
    if level.octave == 0:
        return "fine"
    if level.octave == num_octaves - 1:
        return "rough"
    return "medium"
