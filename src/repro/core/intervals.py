"""Corresponding interval partitions induced by consistent scope boundaries.

Once inconsistency pruning (Section 3.2.2) has committed an equal number of
scope boundaries on both series, the boundaries partition each series into
the same number of consecutive intervals (Figure 9's intervals A…K).  The
k-th interval of the first series corresponds to the k-th interval of the
second series; the band builders in :mod:`repro.core.bands` use these
corresponding intervals to compute locally relevant cores and widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..exceptions import ValidationError
from .consistency import ConsistentAlignment


@dataclass(frozen=True)
class Interval:
    """A half-open-by-convention interval ``[start, end]`` in sample indices."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValidationError(
                f"interval end ({self.end}) precedes start ({self.start})"
            )

    @property
    def length(self) -> int:
        """Number of samples spanned (inclusive of both endpoints)."""
        return self.end - self.start + 1

    @property
    def is_empty(self) -> bool:
        """True if the interval has collapsed to a single boundary sample."""
        return self.end == self.start

    def contains(self, index: int) -> bool:
        """True if the sample index falls inside the interval."""
        return self.start <= index <= self.end


@dataclass(frozen=True)
class IntervalPartition:
    """Corresponding interval partitions of two series.

    Attributes
    ----------
    intervals_x:
        Consecutive intervals covering ``[0, n - 1]``.
    intervals_y:
        Consecutive intervals covering ``[0, m - 1]``; same count as
        ``intervals_x`` and corresponding index-by-index.
    n, m:
        Lengths of the two series.
    """

    intervals_x: Tuple[Interval, ...]
    intervals_y: Tuple[Interval, ...]
    n: int
    m: int

    def __post_init__(self) -> None:
        if len(self.intervals_x) != len(self.intervals_y):
            raise ValidationError(
                "interval partitions must have the same number of intervals"
            )
        if not self.intervals_x:
            raise ValidationError("interval partitions must not be empty")

    @property
    def num_intervals(self) -> int:
        """Number of corresponding interval pairs."""
        return len(self.intervals_x)

    def interval_index_for_x(self, i: int) -> int:
        """Index of the interval of the first series containing sample *i*."""
        return _locate(self.intervals_x, i)

    def interval_index_for_y(self, j: int) -> int:
        """Index of the interval of the second series containing sample *j*."""
        return _locate(self.intervals_y, j)

    def corresponding(self, index: int) -> Tuple[Interval, Interval]:
        """The pair of corresponding intervals at partition position *index*."""
        return self.intervals_x[index], self.intervals_y[index]


def _locate(intervals: Sequence[Interval], index: int) -> int:
    """Find the interval containing a sample index (clamping at the ends)."""
    if index <= intervals[0].end:
        return 0
    if index >= intervals[-1].start:
        return len(intervals) - 1
    lo, hi = 0, len(intervals) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        interval = intervals[mid]
        if index < interval.start:
            hi = mid - 1
        elif index > interval.end:
            lo = mid + 1
        else:
            return mid
    return max(0, min(len(intervals) - 1, lo))


def _boundaries_to_intervals(
    boundaries: Sequence[float], length: int
) -> List[Interval]:
    """Convert sorted boundary positions into consecutive covering intervals.

    Boundaries are rounded to sample indices and deduplicated while
    *preserving multiplicity positions*: each boundary closes the current
    interval and opens the next one, so ``k`` boundaries produce ``k + 1``
    intervals (possibly empty, i.e. single-sample, when boundaries
    coincide or sit at the series ends).
    """
    cuts: List[int] = []
    for b in boundaries:
        idx = int(round(b))
        idx = max(0, min(length - 1, idx))
        cuts.append(idx)
    cuts.sort()
    intervals: List[Interval] = []
    start = 0
    for cut in cuts:
        end = max(start, cut)
        intervals.append(Interval(start=start, end=end))
        start = min(length - 1, end)
    intervals.append(Interval(start=start, end=length - 1))
    return intervals


def build_interval_partition(
    alignment: ConsistentAlignment, n: int, m: int
) -> IntervalPartition:
    """Build the corresponding interval partitions from a consistent alignment.

    Parameters
    ----------
    alignment:
        Output of :func:`repro.core.consistency.prune_inconsistent_pairs`.
        Its two boundary lists have equal length by construction.
    n, m:
        Lengths of the two series.

    Returns
    -------
    IntervalPartition
        With no committed boundaries the partition degenerates to a single
        interval pair covering both series (which yields a plain diagonal
        core and a global width — the graceful fallback the complexity
        discussion in Section 3.4 anticipates).
    """
    if n < 1 or m < 1:
        raise ValidationError("series lengths must be >= 1")
    bx = list(alignment.boundaries_x)
    by = list(alignment.boundaries_y)
    if len(bx) != len(by):
        raise ValidationError(
            "consistent alignment must provide equally many boundaries per series"
        )
    intervals_x = _boundaries_to_intervals(bx, n)
    intervals_y = _boundaries_to_intervals(by, m)
    return IntervalPartition(
        intervals_x=tuple(intervals_x),
        intervals_y=tuple(intervals_y),
        n=n,
        m=m,
    )


def partition_from_boundaries(
    boundaries_x: Sequence[float],
    boundaries_y: Sequence[float],
    n: int,
    m: int,
) -> IntervalPartition:
    """Build a partition directly from two equally long boundary lists.

    Convenience entry point used by tests and by callers that obtain
    boundaries from an external alignment process.
    """
    if len(boundaries_x) != len(boundaries_y):
        raise ValidationError("boundary lists must have equal length")
    intervals_x = _boundaries_to_intervals(list(boundaries_x), n)
    intervals_y = _boundaries_to_intervals(list(boundaries_y), m)
    return IntervalPartition(
        intervals_x=tuple(intervals_x),
        intervals_y=tuple(intervals_y),
        n=n,
        m=m,
    )
