"""Salient features: keypoints with descriptors, plus the extraction pipeline.

This module ties scale-space construction, keypoint detection, and
descriptor creation together into :func:`extract_salient_features`, the
function the sDTW driver (and the Table 2 experiment) calls per series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series
from ..utils.preprocessing import gaussian_smooth
from .config import SDTWConfig
from .descriptors import compute_descriptor
from .keypoints import Keypoint, detect_keypoints
from .scale_space import build_scale_space


@dataclass(frozen=True)
class SalientFeature:
    """A salient feature: a keypoint plus its temporal descriptor.

    Attributes
    ----------
    position:
        Centre of the feature in original-series coordinates.
    sigma:
        Absolute temporal scale (σ).
    scope_start, scope_end:
        Scope boundaries (clipped to the series extent), i.e. the temporal
        region the feature describes (radius 3σ by default).
    octave, level:
        Scale-space coordinates of the underlying keypoint.
    amplitude:
        Value of the smoothed series at the feature centre.
    mean_amplitude:
        Mean of the original series within the feature's scope; used by the
        similarity score μ_sim (Section 3.2.2).
    dog_value:
        Signed DoG response of the keypoint.
    scale_class:
        "fine" / "medium" / "rough" (Table 2 granularity).
    descriptor:
        The 2a×2 gradient descriptor.
    """

    position: float
    sigma: float
    scope_start: float
    scope_end: float
    octave: int
    level: int
    amplitude: float
    mean_amplitude: float
    dog_value: float
    scale_class: str
    descriptor: np.ndarray

    @property
    def scope_length(self) -> float:
        """Temporal length of the feature's scope."""
        return self.scope_end - self.scope_start

    @property
    def center(self) -> float:
        """Alias for :attr:`position` matching the paper's center(f) notation."""
        return self.position

    def scope_as_indices(self, length: int) -> Tuple[int, int]:
        """Scope boundaries as integer indices clipped to ``[0, length - 1]``."""
        start = int(max(0, np.floor(self.scope_start)))
        end = int(min(length - 1, np.ceil(self.scope_end)))
        return start, max(start, end)


def _keypoint_to_feature(
    keypoint: Keypoint,
    series: np.ndarray,
    config: SDTWConfig,
    smoothed_cache: dict,
) -> SalientFeature:
    """Attach a descriptor and scope statistics to a detected keypoint."""
    sigma_key = round(keypoint.sigma, 6)
    if sigma_key not in smoothed_cache:
        smoothed_cache[sigma_key] = gaussian_smooth(series, keypoint.sigma)
    smoothed = smoothed_cache[sigma_key]
    descriptor = compute_descriptor(
        series,
        keypoint.position,
        keypoint.sigma,
        config.descriptor,
        smoothed=smoothed,
    )
    scope_start = max(0.0, keypoint.scope_start)
    scope_end = min(float(series.size - 1), keypoint.scope_end)
    lo = int(np.floor(scope_start))
    hi = int(np.ceil(scope_end)) + 1
    mean_amplitude = float(series[lo:hi].mean()) if hi > lo else float(series[lo])
    return SalientFeature(
        position=keypoint.position,
        sigma=keypoint.sigma,
        scope_start=scope_start,
        scope_end=scope_end,
        octave=keypoint.octave,
        level=keypoint.level,
        amplitude=keypoint.amplitude,
        mean_amplitude=mean_amplitude,
        dog_value=keypoint.dog_value,
        scale_class=keypoint.scale_class,
        descriptor=descriptor,
    )


def extract_salient_features(
    series: Union[Sequence[float], np.ndarray],
    config: Optional[SDTWConfig] = None,
) -> List[SalientFeature]:
    """Extract the salient features of one time series.

    This runs the three extraction steps of Section 3.1.2 — scale-space
    construction, ε-relaxed extrema detection, and descriptor creation —
    and returns the features ordered by position.

    Parameters
    ----------
    series:
        The input time series.
    config:
        Full sDTW configuration; only its ``scale_space`` and ``descriptor``
        sections are used here.

    Returns
    -------
    list of SalientFeature
    """
    if config is None:
        config = SDTWConfig()
    values = as_series(series, "series")
    space = build_scale_space(values, config.scale_space)
    keypoints = detect_keypoints(space)
    smoothed_cache: dict = {}
    features = [
        _keypoint_to_feature(kp, values, config, smoothed_cache) for kp in keypoints
    ]
    features.sort(key=lambda f: (f.position, f.sigma))
    return features


def count_features_by_scale(
    features: Sequence[SalientFeature],
) -> Tuple[int, int, int]:
    """Return (fine, medium, rough) feature counts — the Table 2 quantities."""
    fine = sum(1 for f in features if f.scale_class == "fine")
    medium = sum(1 for f in features if f.scale_class == "medium")
    rough = sum(1 for f in features if f.scale_class == "rough")
    return fine, medium, rough
