"""Locally relevant constraint bands (Section 3.3 of the paper).

Four constraint families are provided, all expressed as per-row windows
compatible with :func:`repro.dtw.banded.banded_dtw`:

* ``fc,fw`` — fixed core & fixed width: the Sakoe–Chiba band (baseline).
* ``fc,aw`` — fixed core & adaptive width: diagonal core, per-point width
  taken from the interval of the second series the candidate point falls
  into (with a lower bound, paper default 20%).
* ``ac,fw`` — adaptive core & fixed width: the core follows the salient
  alignment implied by corresponding intervals; width is fixed.
* ``ac,aw`` / ``ac2,aw`` — adaptive core & adaptive width; the ``ac2``
  refinement averages the widths of the previous/current/next intervals
  (more generally, ±r neighbours).

The adaptive core maps each point x_i to a candidate y_j by linear
interpolation within its corresponding interval pair; empty target
intervals map every source point to the interval's single boundary point,
and empty source intervals would leave gaps which the band validator
bridges (the paper's gap-bridging rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..dtw.banded import union_bands, validate_band, transpose_band
from ..dtw.constraints import sakoe_chiba_band_fraction
from ..exceptions import ConfigurationError, ValidationError
from .config import SDTWConfig
from .intervals import IntervalPartition


@dataclass(frozen=True)
class ConstraintSpec:
    """A parsed constraint specification.

    Attributes
    ----------
    core:
        ``"fixed"`` or ``"adaptive"``.
    width:
        ``"fixed"`` or ``"adaptive"``.
    neighbor_radius:
        Interval-averaging radius for the adaptive width (0 = use only the
        local interval, 1 = the paper's ``ac2`` variant).
    """

    core: str
    width: str
    neighbor_radius: int = 0

    def __post_init__(self) -> None:
        if self.core not in ("fixed", "adaptive"):
            raise ConfigurationError(f"unknown core type {self.core!r}")
        if self.width not in ("fixed", "adaptive"):
            raise ConfigurationError(f"unknown width type {self.width!r}")
        if self.neighbor_radius < 0:
            raise ConfigurationError("neighbor_radius must be >= 0")

    @property
    def label(self) -> str:
        """Canonical short label, e.g. ``"ac,aw"`` or ``"ac2,aw"``."""
        core = "ac" if self.core == "adaptive" else "fc"
        width = "aw" if self.width == "adaptive" else "fw"
        if self.core == "adaptive" and self.width == "adaptive" and self.neighbor_radius > 0:
            core = f"ac{self.neighbor_radius + 1}"
        return f"{core},{width}"


_SPEC_ALIASES = {
    "fc,fw": ConstraintSpec("fixed", "fixed"),
    "fcfw": ConstraintSpec("fixed", "fixed"),
    "sakoe": ConstraintSpec("fixed", "fixed"),
    "sakoe-chiba": ConstraintSpec("fixed", "fixed"),
    "fc,aw": ConstraintSpec("fixed", "adaptive"),
    "fcaw": ConstraintSpec("fixed", "adaptive"),
    "ac,fw": ConstraintSpec("adaptive", "fixed"),
    "acfw": ConstraintSpec("adaptive", "fixed"),
    "ac,aw": ConstraintSpec("adaptive", "adaptive", 0),
    "acaw": ConstraintSpec("adaptive", "adaptive", 0),
    "ac2,aw": ConstraintSpec("adaptive", "adaptive", 1),
    "ac2aw": ConstraintSpec("adaptive", "adaptive", 1),
}


def parse_constraint_spec(spec: Union[str, ConstraintSpec]) -> ConstraintSpec:
    """Parse a constraint label (e.g. ``"ac,aw"``) into a :class:`ConstraintSpec`."""
    if isinstance(spec, ConstraintSpec):
        return spec
    key = str(spec).strip().lower().replace(" ", "")
    try:
        return _SPEC_ALIASES[key]
    except KeyError as exc:
        known = ", ".join(sorted(set(_SPEC_ALIASES)))
        raise ValidationError(
            f"unknown constraint spec {spec!r}; known specs: {known}"
        ) from exc


def _candidate_points_fixed_core(n: int, m: int) -> np.ndarray:
    """Diagonal candidate points: j = i scaled onto the second series."""
    if n == 1:
        return np.zeros(n, dtype=float)
    return np.arange(n, dtype=float) * (m - 1) / (n - 1)


def _candidate_points_adaptive_core(
    n: int, m: int, partition: IntervalPartition
) -> np.ndarray:
    """Candidate points from corresponding intervals (Section 3.3.2).

    For x_i in interval E, the candidate j satisfies

        (j - st(Y,E)) / (end(Y,E) - st(Y,E)) = (i - st(X,E)) / (end(X,E) - st(X,E)).

    When the Y interval is empty every point maps to its single boundary;
    when the X interval is empty the single source point maps to the start
    of the Y interval (the resulting vertical jump is handled by the band
    validator's gap bridging).
    """
    candidates = np.zeros(n, dtype=float)
    for idx in range(partition.num_intervals):
        ix, iy = partition.corresponding(idx)
        x_len = ix.end - ix.start
        y_len = iy.end - iy.start
        for i in range(ix.start, ix.end + 1):
            if x_len == 0:
                candidates[i] = iy.start
            elif y_len == 0:
                candidates[i] = iy.start
            else:
                fraction = (i - ix.start) / x_len
                candidates[i] = iy.start + fraction * y_len
    # Interval ends overlap between consecutive intervals; the last write
    # wins, which matches taking the later interval's mapping at the shared
    # boundary point.  Endpoints are forced onto the grid corners so that a
    # warp path always exists.
    candidates[0] = 0.0
    candidates[-1] = m - 1
    return np.clip(candidates, 0, m - 1)


def _interval_widths(partition: IntervalPartition) -> np.ndarray:
    """Widths (sample counts) of the second series' intervals."""
    return np.asarray([iv.length for iv in partition.intervals_y], dtype=float)


def _averaged_width(
    widths: np.ndarray, index: int, neighbor_radius: int
) -> float:
    """Mean width of the intervals within ±neighbor_radius of *index*."""
    lo = max(0, index - neighbor_radius)
    hi = min(widths.size - 1, index + neighbor_radius)
    return float(widths[lo: hi + 1].mean())


def build_constraint_band(
    n: int,
    m: int,
    spec: Union[str, ConstraintSpec],
    partition: Optional[IntervalPartition] = None,
    config: Optional[SDTWConfig] = None,
) -> np.ndarray:
    """Build the per-row window band for a constraint specification.

    Parameters
    ----------
    n, m:
        Lengths of the two series (the band has ``n`` rows over ``m`` columns).
    spec:
        Constraint family: ``"fc,fw"``, ``"fc,aw"``, ``"ac,fw"``,
        ``"ac,aw"``, ``"ac2,aw"`` or a :class:`ConstraintSpec`.
    partition:
        Corresponding interval partition (required by the adaptive
        variants; when ``None`` or trivial those variants degrade to their
        fixed counterparts, which is the documented fallback when no
        salient features could be matched).
    config:
        sDTW configuration providing the fixed width fraction, adaptive
        width bounds and the default neighbour radius.

    Returns
    -------
    numpy.ndarray
        Validated band of shape ``(n, 2)``.
    """
    if config is None:
        config = SDTWConfig()
    parsed = parse_constraint_spec(spec)

    # Pure Sakoe-Chiba short-circuit.
    if parsed.core == "fixed" and parsed.width == "fixed":
        return sakoe_chiba_band_fraction(n, m, config.width_fraction)

    have_partition = partition is not None and partition.num_intervals > 1

    # Candidate (core) points.
    if parsed.core == "adaptive" and have_partition:
        candidates = _candidate_points_adaptive_core(n, m, partition)
    else:
        candidates = _candidate_points_fixed_core(n, m)

    # Per-point widths.
    fixed_width = max(1.0, config.width_fraction * m)
    lower_bound = max(1.0, config.adaptive_width_lower_bound * m)
    upper_bound = (
        config.adaptive_width_upper_bound * m
        if config.adaptive_width_upper_bound is not None
        else float(m)
    )
    if parsed.width == "adaptive" and have_partition:
        widths_y = _interval_widths(partition)
        radius = parsed.neighbor_radius or 0
        per_point_width = np.empty(n, dtype=float)
        for i in range(n):
            j = int(round(candidates[i]))
            interval_idx = partition.interval_index_for_y(j)
            if radius > 0:
                width = _averaged_width(widths_y, interval_idx, radius)
            else:
                width = widths_y[interval_idx]
            per_point_width[i] = min(max(width, lower_bound), upper_bound)
    elif parsed.width == "adaptive":
        # No partition information: fall back to the lower bound width.
        per_point_width = np.full(n, max(lower_bound, fixed_width))
    else:
        per_point_width = np.full(n, fixed_width)

    half = np.ceil(per_point_width / 2.0)
    lo = np.floor(candidates - half).astype(int)
    hi = np.ceil(candidates + half).astype(int)
    band = np.stack([lo, hi], axis=1)
    return validate_band(band, n, m, repair=True)


def build_symmetric_band(
    band_xy: np.ndarray,
    band_yx: np.ndarray,
    n: int,
    m: int,
) -> np.ndarray:
    """Combine an X-driven band and a Y-driven band into a symmetric band.

    The Y-driven band (built over the transposed grid) is transposed back
    and united with the X-driven band, as suggested in Section 3.3.3 for
    rendering the adaptive constraints symmetric.
    """
    transposed = transpose_band(band_yx, m, n)
    return validate_band(union_bands(band_xy, transposed), n, m, repair=True)
