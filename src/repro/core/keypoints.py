"""Keypoint detection on the 1-D difference-of-Gaussian scale space.

Implements the ε-relaxed extrema search of Section 3.1.2: a point ``⟨x, σ⟩``
is accepted as a robust keypoint if its DoG magnitude is larger than
``(1 − ε)`` times that of each of its neighbours in time (left/right at the
same scale) and in scale (the same position one DoG level up and down
within the octave).  Unlike 2-D SIFT, nearby candidates are *not* forced to
prune each other, because over-pruning would starve the DTW band
construction of alignment evidence.

Low-contrast candidates (SIFT Step 2) are removed with a threshold on the
DoG magnitude relative to the level's value range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .config import ScaleSpaceConfig
from .scale_space import ScaleSpace, classify_scale


@dataclass(frozen=True)
class Keypoint:
    """A detected salient point before descriptor attachment.

    Attributes
    ----------
    position:
        Centre of the keypoint in original-series coordinates (float,
        because coarser octaves map back with a stride).
    sigma:
        Absolute temporal scale (σ) of the keypoint.
    scope_radius:
        Radius of the keypoint's scope (``scope_radius_sigmas * sigma``).
    octave, level:
        Scale-space coordinates where the keypoint was found.
    dog_value:
        The DoG response at the keypoint (signed; positive for peaks of the
        difference series, negative for dips).
    amplitude:
        Value of the smoothed series at the keypoint, used by the matching
        stage's amplitude gate (τ_a).
    scale_class:
        "fine", "medium" or "rough" — used by the Table 2 reproduction.
    """

    position: float
    sigma: float
    scope_radius: float
    octave: int
    level: int
    dog_value: float
    amplitude: float
    scale_class: str

    @property
    def scope_start(self) -> float:
        """Start (inclusive, in original coordinates) of the keypoint's scope."""
        return self.position - self.scope_radius

    @property
    def scope_end(self) -> float:
        """End (inclusive, in original coordinates) of the keypoint's scope."""
        return self.position + self.scope_radius

    @property
    def scope_length(self) -> float:
        """Temporal length of the scope (2 × scope_radius)."""
        return 2.0 * self.scope_radius


def _neighbours(
    level_values: np.ndarray,
    up_values: np.ndarray,
    down_values: np.ndarray,
    index: int,
) -> List[float]:
    """Collect the DoG values of the time and scale neighbours of a point."""
    neighbours: List[float] = []
    if index > 0:
        neighbours.append(float(level_values[index - 1]))
    if index + 1 < level_values.size:
        neighbours.append(float(level_values[index + 1]))
    for other in (up_values, down_values):
        if other is None:
            continue
        for offset in (-1, 0, 1):
            j = index + offset
            if 0 <= j < other.size:
                neighbours.append(float(other[j]))
    return neighbours


def _is_relaxed_extremum(value: float, neighbours: Sequence[float], epsilon: float) -> bool:
    """ε-relaxed extremum test on |DoG| magnitudes.

    The candidate survives if its magnitude is at least ``(1 - ε)`` times
    the magnitude of every neighbour, i.e. it does not need to strictly
    dominate them — near-ties are kept rather than pruning each other.
    """
    magnitude = abs(value)
    if magnitude == 0.0:
        return False
    threshold = 1.0 - epsilon
    for other in neighbours:
        if magnitude < threshold * abs(other):
            return False
    return True


def detect_keypoints(space: ScaleSpace) -> List[Keypoint]:
    """Detect robust keypoints on a scale space.

    Parameters
    ----------
    space:
        Scale space built by :func:`repro.core.scale_space.build_scale_space`.

    Returns
    -------
    list of Keypoint
        Keypoints ordered by original-series position (ties broken by σ).
    """
    config: ScaleSpaceConfig = space.config
    num_octaves = space.num_octaves
    keypoints: List[Keypoint] = []
    for octave in range(num_octaves):
        octave_levels = space.levels_of_octave(octave)
        for idx, level in enumerate(octave_levels):
            dog = level.dog
            if dog.size < 3:
                continue
            up = octave_levels[idx + 1].dog if idx + 1 < len(octave_levels) else None
            down = octave_levels[idx - 1].dog if idx - 1 >= 0 else None
            value_range = float(dog.max() - dog.min())
            # Absolute floor guards against float round-off on (near-)constant
            # series, where the DoG is numerically but not exactly zero.
            series_scale = float(np.max(np.abs(level.smoothed))) or 1.0
            contrast_floor = max(
                config.contrast_threshold * value_range, 1e-9 * series_scale
            )
            for i in range(dog.size):
                value = float(dog[i])
                if abs(value) < contrast_floor or value == 0.0:
                    continue
                neighbours = _neighbours(dog, up, down, i)
                if not neighbours:
                    continue
                if not _is_relaxed_extremum(value, neighbours, config.epsilon):
                    continue
                position = level.to_original_position(i)
                if position >= space.series.size:
                    continue
                keypoints.append(
                    Keypoint(
                        position=position,
                        sigma=level.sigma,
                        scope_radius=config.scope_radius_sigmas * level.sigma,
                        octave=level.octave,
                        level=level.level,
                        dog_value=value,
                        amplitude=float(level.smoothed[i]),
                        scale_class=classify_scale(level, num_octaves),
                    )
                )
    keypoints.sort(key=lambda kp: (kp.position, kp.sigma))
    return keypoints


def count_by_scale_class(keypoints: Sequence[Keypoint]) -> Tuple[int, int, int]:
    """Return (fine, medium, rough) keypoint counts — the Table 2 quantities."""
    fine = sum(1 for kp in keypoints if kp.scale_class == "fine")
    medium = sum(1 for kp in keypoints if kp.scale_class == "medium")
    rough = sum(1 for kp in keypoints if kp.scale_class == "rough")
    return fine, medium, rough
