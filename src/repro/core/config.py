"""Configuration objects for the sDTW pipeline.

All defaults follow Section 4.3 of the paper:

* feature descriptors with 64 bins,
* ``o = floor(log2(N)) - 6`` octaves (at least one), each with ``s = 2``
  levels,
* ε = 0.96 for the relaxed extrema acceptance,
* scope radius of 3σ,
* a 20% lower bound on the adaptive width,
* Sakoe–Chiba baseline widths of 6%, 10% and 20%.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from ..exceptions import ConfigurationError


class _DictRoundTrip:
    """``to_dict`` / ``from_dict`` persistence shared by flat config dataclasses.

    Every configuration object in this module can be serialised to a plain
    JSON-compatible dict and reconstructed exactly; persistent artefacts
    (the index manifest, the Workspace manifest) rely on this round trip to
    record the configuration they were built with.  Nested configurations
    (:class:`SDTWConfig`) override :meth:`from_dict` to rebuild their
    sections.
    """

    def to_dict(self) -> dict:
        """Plain-dict form of the configuration (JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict):
        """Rebuild a configuration written by :meth:`to_dict`."""
        return cls(**dict(data))


@dataclass(frozen=True)
class ScaleSpaceConfig(_DictRoundTrip):
    """Parameters of the 1-D Gaussian scale-space construction.

    Attributes
    ----------
    num_octaves:
        Number of octaves.  ``None`` (default) selects
        ``max(1, floor(log2(N)) - 6)`` per series, the paper's rule.
    levels_per_octave:
        Number of difference-of-Gaussian levels per octave (paper: 2).
    base_sigma:
        Smoothing σ of the first level of the first octave.
    epsilon:
        Relaxation used when accepting extrema: a point is kept if its
        difference-of-Gaussian magnitude exceeds ``(1 - epsilon')`` times
        each neighbour, where ``epsilon'`` is this value expressed as a
        fraction (the paper quotes 0.96%, i.e. 0.0096).
    scope_radius_sigmas:
        Scope radius in units of σ (paper: 3, covering ~99.73% of the mass
        that contributed to the keypoint).
    contrast_threshold:
        Minimum |DoG| magnitude for a keypoint, as a fraction of the DoG
        value range at that level; filters low-contrast, noise-sensitive
        candidates (SIFT Step 2).
    min_series_length:
        Series shorter than this produce no octaves beyond the first.
    """

    num_octaves: Optional[int] = None
    levels_per_octave: int = 2
    base_sigma: float = 1.0
    epsilon: float = 0.0096
    scope_radius_sigmas: float = 3.0
    contrast_threshold: float = 0.01
    min_series_length: int = 8

    def __post_init__(self) -> None:
        if self.num_octaves is not None and self.num_octaves < 1:
            raise ConfigurationError("num_octaves must be >= 1 when given")
        if self.levels_per_octave < 1:
            raise ConfigurationError("levels_per_octave must be >= 1")
        if self.base_sigma <= 0:
            raise ConfigurationError("base_sigma must be positive")
        if not 0 <= self.epsilon < 1:
            raise ConfigurationError("epsilon must lie in [0, 1)")
        if self.scope_radius_sigmas <= 0:
            raise ConfigurationError("scope_radius_sigmas must be positive")
        if self.contrast_threshold < 0:
            raise ConfigurationError("contrast_threshold must be non-negative")
        if self.min_series_length < 2:
            raise ConfigurationError("min_series_length must be >= 2")

    @property
    def kappa(self) -> float:
        """Multiplicative scale factor between levels, with κ^s = 2."""
        return 2.0 ** (1.0 / self.levels_per_octave)

    def octaves_for_length(self, length: int) -> int:
        """Number of octaves for a series of the given length.

        Follows the paper's ``o = floor(log2(N)) - 6`` rule when
        ``num_octaves`` is not set explicitly, never dropping below 1 and
        never exceeding what the series length can support (each octave
        halves the series; we stop before a series would fall below 4
        samples).
        """
        if length < 2:
            return 1
        supported = max(1, int(math.floor(math.log2(max(length, 2)))) - 1)
        if self.num_octaves is not None:
            requested = self.num_octaves
        else:
            requested = max(1, int(math.floor(math.log2(length))) - 6)
        return max(1, min(requested, supported))


@dataclass(frozen=True)
class DescriptorConfig(_DictRoundTrip):
    """Parameters of the salient-feature descriptor (Section 3.1.2, Step 2).

    A descriptor has ``num_bins = 2a * 2`` entries: ``2a`` temporal cells
    around the keypoint, each holding a 2-bin gradient-magnitude histogram
    (increasing vs. decreasing gradients — the only two "orientations" that
    exist in 1-D).

    Attributes
    ----------
    num_bins:
        Total descriptor length (paper default 64; the descriptor-length
        study sweeps 4 … 128).  Must be an even number >= 4.
    samples_per_cell:
        How many gradient samples each temporal cell aggregates.
    gaussian_weight_factor:
        Width of the Gaussian weighting window, as a multiple of the
        descriptor half-width (SIFT uses 0.5 × the window size).
    normalize:
        Whether to L2-normalise the descriptor (and clip + renormalise),
        which gives the amplitude invariance discussed in Section 3.1.2.
    clip_value:
        Clipping threshold applied after the first normalisation (the SIFT
        0.2 rule) to damp the influence of single large gradients.
    """

    num_bins: int = 64
    samples_per_cell: int = 2
    gaussian_weight_factor: float = 0.5
    normalize: bool = True
    clip_value: float = 0.2

    def __post_init__(self) -> None:
        if self.num_bins < 4 or self.num_bins % 2 != 0:
            raise ConfigurationError("num_bins must be an even integer >= 4")
        if self.samples_per_cell < 1:
            raise ConfigurationError("samples_per_cell must be >= 1")
        if self.gaussian_weight_factor <= 0:
            raise ConfigurationError("gaussian_weight_factor must be positive")
        if not 0 < self.clip_value <= 1:
            raise ConfigurationError("clip_value must lie in (0, 1]")

    @property
    def num_cells(self) -> int:
        """Number of temporal cells (2a in the paper's notation)."""
        return self.num_bins // 2


@dataclass(frozen=True)
class MatchingConfig(_DictRoundTrip):
    """Thresholds for dominant-pair matching and inconsistency pruning.

    Attributes
    ----------
    max_amplitude_difference:
        τ_a — maximum allowed difference between the amplitudes of two
        salient points (measured on z-normalised series).
    max_scale_ratio:
        τ_s — maximum allowed ratio between the scales (σ) of the two
        salient points (always >= 1; the ratio is taken larger/smaller).
    distinctiveness_ratio:
        τ_d (> 1) — the best descriptor match must be at least this factor
        better (smaller distance) than any competing match for the pair to
        be accepted as dominant.
    require_distinctive:
        If False the distinctiveness test is skipped and every nearest
        neighbour satisfying the τ_a / τ_s gates is kept.
    prune_inconsistencies:
        Whether to run the scope-boundary-order pruning of Section 3.2.2.
    """

    max_amplitude_difference: float = 1.0
    max_scale_ratio: float = 4.0
    distinctiveness_ratio: float = 1.2
    require_distinctive: bool = True
    prune_inconsistencies: bool = True

    def __post_init__(self) -> None:
        if self.max_amplitude_difference <= 0:
            raise ConfigurationError("max_amplitude_difference must be positive")
        if self.max_scale_ratio < 1:
            raise ConfigurationError("max_scale_ratio must be >= 1")
        if self.distinctiveness_ratio <= 1:
            raise ConfigurationError("distinctiveness_ratio must be > 1")


@dataclass(frozen=True)
class SDTWConfig(_DictRoundTrip):
    """Top-level configuration of the sDTW pipeline.

    Attributes
    ----------
    scale_space:
        Scale-space construction parameters.
    descriptor:
        Descriptor parameters.
    matching:
        Matching / pruning thresholds.
    width_fraction:
        Fixed band width (fraction of the second series length) used by the
        fixed-width constraints and as the adaptive-width lower bound
        fall-back when no features are found.
    adaptive_width_lower_bound:
        Lower bound on the adaptive width, as a fraction of the second
        series length (paper: 20%).
    adaptive_width_upper_bound:
        Optional upper bound on the adaptive width (fraction); ``None``
        disables the cap.
    neighbor_radius:
        r — how many neighbouring intervals on each side are averaged by
        the ``ac2,aw`` refinement (paper: 1, i.e. previous/current/next).
    symmetric_band:
        If True, the band is the union of the X-driven and Y-driven bands,
        making the constrained distance symmetric (Section 3.3.3).
    pointwise_distance:
        Name of the pointwise element distance (see
        :mod:`repro.dtw.distances`).
    """

    scale_space: ScaleSpaceConfig = field(default_factory=ScaleSpaceConfig)
    descriptor: DescriptorConfig = field(default_factory=DescriptorConfig)
    matching: MatchingConfig = field(default_factory=MatchingConfig)
    width_fraction: float = 0.10
    adaptive_width_lower_bound: float = 0.20
    adaptive_width_upper_bound: Optional[float] = None
    neighbor_radius: int = 1
    symmetric_band: bool = False
    pointwise_distance: str = "absolute"

    def __post_init__(self) -> None:
        if not 0 < self.width_fraction <= 1:
            raise ConfigurationError("width_fraction must lie in (0, 1]")
        if not 0 <= self.adaptive_width_lower_bound <= 1:
            raise ConfigurationError(
                "adaptive_width_lower_bound must lie in [0, 1]"
            )
        if self.adaptive_width_upper_bound is not None:
            if not 0 < self.adaptive_width_upper_bound <= 1:
                raise ConfigurationError(
                    "adaptive_width_upper_bound must lie in (0, 1]"
                )
            if self.adaptive_width_upper_bound < self.adaptive_width_lower_bound:
                raise ConfigurationError(
                    "adaptive_width_upper_bound must be >= the lower bound"
                )
        if self.neighbor_radius < 0:
            raise ConfigurationError("neighbor_radius must be >= 0")

    def to_dict(self) -> dict:
        """Plain-dict form of the full configuration (JSON-serialisable).

        Used by persistent artefacts (e.g. the indexing manifest) so a
        reader can reconstruct — and verify — the exact extraction
        configuration an index was built with.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SDTWConfig":
        """Rebuild a configuration written by :meth:`to_dict`."""
        payload = dict(data)
        return cls(
            scale_space=ScaleSpaceConfig(**payload.pop("scale_space", {})),
            descriptor=DescriptorConfig(**payload.pop("descriptor", {})),
            matching=MatchingConfig(**payload.pop("matching", {})),
            **payload,
        )

    def with_descriptor_bins(self, num_bins: int) -> "SDTWConfig":
        """Return a copy with a different descriptor length (Figure 18 sweep)."""
        return replace(self, descriptor=replace(self.descriptor, num_bins=num_bins))

    def with_width_fraction(self, width_fraction: float) -> "SDTWConfig":
        """Return a copy with a different fixed band width."""
        return replace(self, width_fraction=width_fraction)


DEFAULT_CONFIG = SDTWConfig()
"""Module-level default configuration mirroring the paper's settings."""
