"""Dominant salient-feature matching between two time series.

Implements Section 3.2.1 of the paper: features from the first series are
paired with features of the second series using Euclidean descriptor
distance, subject to

* an amplitude gate (difference below τ_a),
* a scale gate (σ ratio below τ_s), and
* a distinctiveness test: the best candidate is accepted only if no other
  candidate's descriptor distance is within a factor τ_d of it (Lowe's
  ratio test, with distances where smaller is better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .config import MatchingConfig
from .features import SalientFeature


@dataclass(frozen=True)
class MatchedPair:
    """A matched pair of salient features (one from each series).

    Attributes
    ----------
    feature_x:
        The feature from the first series.
    feature_y:
        The feature from the second series.
    descriptor_distance:
        Euclidean distance between the two descriptors (smaller = closer).
    """

    feature_x: SalientFeature
    feature_y: SalientFeature
    descriptor_distance: float

    @property
    def descriptor_similarity(self) -> float:
        """A similarity score in (0, 1]: ``1 / (1 + distance)``."""
        return 1.0 / (1.0 + self.descriptor_distance)

    @property
    def center_offset(self) -> float:
        """Temporal offset between the two feature centres."""
        return abs(self.feature_x.position - self.feature_y.position)


def _passes_gates(
    first: SalientFeature, second: SalientFeature, config: MatchingConfig
) -> bool:
    """Amplitude (τ_a) and scale-ratio (τ_s) admissibility gates."""
    if abs(first.amplitude - second.amplitude) > config.max_amplitude_difference:
        return False
    small, large = sorted((first.sigma, second.sigma))
    if small <= 0:
        return False
    if large / small > config.max_scale_ratio:
        return False
    return True


def match_salient_features(
    features_x: Sequence[SalientFeature],
    features_y: Sequence[SalientFeature],
    config: Optional[MatchingConfig] = None,
) -> List[MatchedPair]:
    """Identify the dominant matching pairs between two feature sets.

    For every feature of the first series the admissible candidates in the
    second series (those passing the amplitude and scale gates) are ranked
    by descriptor distance; the closest candidate is returned as a match if
    it is distinctive — no other admissible candidate may be within a
    factor ``distinctiveness_ratio`` (τ_d) of its distance.

    The whole computation is vectorised over the |S_X| × |S_Y| candidate
    grid, keeping the matching step a small fraction of the per-comparison
    cost (the property Figure 17 of the paper reports).

    Parameters
    ----------
    features_x, features_y:
        Salient features of the two series being compared.
    config:
        Matching thresholds; defaults to :class:`MatchingConfig`'s defaults.

    Returns
    -------
    list of MatchedPair
        Matches ordered by the position of the first series' feature.
    """
    if config is None:
        config = MatchingConfig()
    matches: List[MatchedPair] = []
    if not features_x or not features_y:
        return matches

    # Descriptors may have different lengths if callers mix configurations;
    # compare over the common prefix (normal use keeps lengths equal).
    min_len = min(
        min(f.descriptor.size for f in features_x),
        min(f.descriptor.size for f in features_y),
    )
    desc_x = np.stack([f.descriptor[:min_len] for f in features_x])
    desc_y = np.stack([f.descriptor[:min_len] for f in features_y])
    # Pairwise Euclidean distances between descriptors.
    sq = (
        np.sum(desc_x * desc_x, axis=1)[:, None]
        + np.sum(desc_y * desc_y, axis=1)[None, :]
        - 2.0 * desc_x @ desc_y.T
    )
    distances = np.sqrt(np.maximum(sq, 0.0))

    amp_x = np.asarray([f.amplitude for f in features_x])
    amp_y = np.asarray([f.amplitude for f in features_y])
    sigma_x = np.asarray([f.sigma for f in features_x])
    sigma_y = np.asarray([f.sigma for f in features_y])
    amplitude_ok = (
        np.abs(amp_x[:, None] - amp_y[None, :]) <= config.max_amplitude_difference
    )
    ratio = np.maximum(sigma_x[:, None], sigma_y[None, :]) / np.maximum(
        np.minimum(sigma_x[:, None], sigma_y[None, :]), 1e-12
    )
    scale_ok = ratio <= config.max_scale_ratio
    admissible = amplitude_ok & scale_ok

    gated = np.where(admissible, distances, np.inf)
    for i, feature in enumerate(features_x):
        row = gated[i]
        best_j = int(np.argmin(row))
        best_distance = float(row[best_j])
        if not np.isfinite(best_distance):
            continue
        if config.require_distinctive and row.size > 1:
            second_distance = float(np.partition(row, 1)[1])
            # Accept only if the best match is clearly better than the
            # runner-up: best * tau_d <= second.
            if (
                np.isfinite(second_distance)
                and best_distance * config.distinctiveness_ratio > second_distance
            ):
                continue
        matches.append(
            MatchedPair(
                feature_x=feature,
                feature_y=features_y[best_j],
                descriptor_distance=best_distance,
            )
        )
    matches.sort(key=lambda pair: pair.feature_x.position)
    return matches
