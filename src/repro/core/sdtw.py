"""The sDTW driver: salient features -> matching -> pruning -> band -> DTW.

This module exposes the library's primary public API:

* :class:`SDTW` — an object that caches extracted salient features per
  series (extraction is a one-time cost per series, as Section 3.4 of the
  paper emphasises) and computes constrained DTW distances under any of
  the paper's constraint families.
* :func:`sdtw_distance` — a one-shot functional entry point.

Every result records a timing breakdown (feature extraction, matching +
inconsistency pruning, dynamic programming) so the experiment harness can
reproduce the execution-time analysis of Figure 17 and the time-gain
measure used throughout Section 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series
from ..dtw.banded import BandedDTWResult, banded_dtw
from ..dtw.constraints import full_band
from ..dtw.full import dtw
from ..dtw.path import WarpPath
from .bands import ConstraintSpec, build_constraint_band, build_symmetric_band, parse_constraint_spec
from .config import SDTWConfig
from .consistency import ConsistentAlignment, prune_inconsistent_pairs
from .features import SalientFeature, extract_salient_features
from .intervals import IntervalPartition, build_interval_partition
from .matching import MatchedPair, match_salient_features


@dataclass(frozen=True)
class SDTWAlignment:
    """Intermediate artefacts of the sDTW pipeline for one series pair.

    Attributes
    ----------
    features_x, features_y:
        Salient features of the two series.
    matches:
        Dominant matching pairs before inconsistency pruning.
    consistent:
        The consistent alignment after pruning.
    partition:
        Corresponding interval partition induced by the committed scope
        boundaries.
    matching_seconds:
        Wall-clock time spent on matching + inconsistency pruning +
        partitioning (the paper's task (b)).
    """

    features_x: Tuple[SalientFeature, ...]
    features_y: Tuple[SalientFeature, ...]
    matches: Tuple[MatchedPair, ...]
    consistent: ConsistentAlignment
    partition: IntervalPartition
    matching_seconds: float


@dataclass(frozen=True)
class SDTWResult:
    """Result of a constrained (or full) DTW computation.

    Attributes
    ----------
    distance:
        The computed DTW distance under the chosen constraint.
    constraint:
        Canonical constraint label (``"full"``, ``"fc,fw"``, ``"ac,aw"``, …).
    path:
        The constrained-optimal warp path (``None`` if not requested).
    cells_filled:
        Number of DTW grid cells evaluated by the dynamic program.
    total_cells:
        ``N * M`` — the full grid size, for computing cell savings.
    extract_seconds:
        Time spent extracting salient features *for this call* (0 when the
        features came from the cache, matching the paper's treatment of
        extraction as a one-time, amortisable cost).
    matching_seconds:
        Time spent on matching and inconsistency pruning (task (b)).
    dp_seconds:
        Time spent filling the (banded) DTW grid and backtracking (task (c)).
    alignment:
        The intermediate alignment artefacts (``None`` for the
        non-salient-feature constraints).
    band:
        The constraint band actually used (``None`` for full DTW).
    abandoned:
        True when an ``abandon_threshold`` was given and the dynamic
        program stopped early because the distance provably exceeds it
        (``distance`` is then ``inf``).
    """

    distance: float
    constraint: str
    path: Optional[WarpPath]
    cells_filled: int
    total_cells: int
    extract_seconds: float = 0.0
    matching_seconds: float = 0.0
    dp_seconds: float = 0.0
    alignment: Optional[SDTWAlignment] = None
    band: Optional[np.ndarray] = None
    abandoned: bool = False

    @property
    def compute_seconds(self) -> float:
        """Per-comparison time: matching + DP (tasks (b) and (c))."""
        return self.matching_seconds + self.dp_seconds

    @property
    def cell_savings(self) -> float:
        """Fraction of the full grid that was *not* filled."""
        if self.total_cells == 0:
            return 0.0
        return 1.0 - self.cells_filled / self.total_cells


_SALIENT_SPECS = ("fc,aw", "ac,fw", "ac,aw", "ac2,aw")


class SDTW:
    """Salient-feature-based DTW with locally relevant constraints.

    Parameters
    ----------
    config:
        Pipeline configuration (scale space, descriptors, matching
        thresholds, band widths).  Defaults to the paper's settings.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import SDTW
    >>> x = np.sin(np.linspace(0, 6.28, 120))
    >>> y = np.sin(np.linspace(0, 6.28, 150) - 0.4)
    >>> engine = SDTW()
    >>> result = engine.distance(x, y, constraint="ac,aw")
    >>> result.distance >= 0
    True
    """

    def __init__(self, config: Optional[SDTWConfig] = None) -> None:
        self.config = config if config is not None else SDTWConfig()
        self._feature_cache: Dict[int, Tuple[SalientFeature, ...]] = {}
        self._cache_keys: Dict[int, bytes] = {}

    # ------------------------------------------------------------------ #
    # Feature extraction and caching
    # ------------------------------------------------------------------ #
    def clear_cache(self) -> None:
        """Drop all cached salient features."""
        self._feature_cache.clear()
        self._cache_keys.clear()

    def _cache_key(self, series: np.ndarray) -> int:
        return hash(series.tobytes())

    def extract_features(
        self, series: Union[Sequence[float], np.ndarray]
    ) -> Tuple[Tuple[SalientFeature, ...], float]:
        """Extract (or fetch from cache) the salient features of a series.

        Returns
        -------
        (features, seconds):
            The features and the wall-clock extraction time (0.0 on a
            cache hit).
        """
        values = as_series(series, "series")
        key = self._cache_key(values)
        if key in self._feature_cache:
            return self._feature_cache[key], 0.0
        start = time.perf_counter()
        features = tuple(extract_salient_features(values, self.config))
        elapsed = time.perf_counter() - start
        self._feature_cache[key] = features
        return features, elapsed

    # ------------------------------------------------------------------ #
    # Alignment
    # ------------------------------------------------------------------ #
    def align(
        self,
        x: Union[Sequence[float], np.ndarray],
        y: Union[Sequence[float], np.ndarray],
    ) -> SDTWAlignment:
        """Run matching + inconsistency pruning + interval partitioning.

        Feature extraction goes through the cache; the returned
        ``matching_seconds`` covers only the per-pair work (the paper's
        task (b)).
        """
        xs = as_series(x, "x")
        ys = as_series(y, "y")
        features_x, _ = self.extract_features(xs)
        features_y, _ = self.extract_features(ys)
        start = time.perf_counter()
        matches = match_salient_features(features_x, features_y, self.config.matching)
        consistent = prune_inconsistent_pairs(matches, self.config.matching)
        partition = build_interval_partition(consistent, xs.size, ys.size)
        matching_seconds = time.perf_counter() - start
        return SDTWAlignment(
            features_x=tuple(features_x),
            features_y=tuple(features_y),
            matches=tuple(matches),
            consistent=consistent,
            partition=partition,
            matching_seconds=matching_seconds,
        )

    # ------------------------------------------------------------------ #
    # Band construction
    # ------------------------------------------------------------------ #
    def build_band(
        self,
        x: Union[Sequence[float], np.ndarray],
        y: Union[Sequence[float], np.ndarray],
        constraint: Union[str, ConstraintSpec],
        alignment: Optional[SDTWAlignment] = None,
    ) -> Tuple[np.ndarray, Optional[SDTWAlignment]]:
        """Build the constraint band for a pair of series.

        For the salient-feature constraints an alignment is computed (or
        reused if supplied); the Sakoe–Chiba baseline needs none.
        """
        xs = as_series(x, "x")
        ys = as_series(y, "y")
        spec = parse_constraint_spec(constraint)
        needs_alignment = spec.core == "adaptive" or spec.width == "adaptive"
        if needs_alignment and alignment is None:
            alignment = self.align(xs, ys)
        partition = alignment.partition if alignment is not None else None
        band = build_constraint_band(xs.size, ys.size, spec, partition, self.config)
        if self.config.symmetric_band and needs_alignment:
            reverse_alignment = self.align(ys, xs)
            reverse_band = build_constraint_band(
                ys.size, xs.size, spec, reverse_alignment.partition, self.config
            )
            band = build_symmetric_band(band, reverse_band, xs.size, ys.size)
        return band, alignment

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #
    def distance(
        self,
        x: Union[Sequence[float], np.ndarray],
        y: Union[Sequence[float], np.ndarray],
        constraint: Union[str, ConstraintSpec] = "ac,aw",
        *,
        return_path: bool = False,
        abandon_threshold: Optional[float] = None,
    ) -> SDTWResult:
        """Compute the DTW distance under a constraint family.

        Parameters
        ----------
        x, y:
            The two time series.
        constraint:
            ``"full"`` for the exact DTW, or one of ``"fc,fw"``,
            ``"fc,aw"``, ``"ac,fw"``, ``"ac,aw"``, ``"ac2,aw"``.
        return_path:
            Whether to also backtrack the warp path.
        abandon_threshold:
            Early-abandoning threshold (k-NN search): stop the dynamic
            program as soon as the distance provably exceeds it (see
            :func:`repro.dtw.banded.banded_dtw`).  Requires
            ``return_path=False``.

        Returns
        -------
        SDTWResult
        """
        xs = as_series(x, "x")
        ys = as_series(y, "y")
        total_cells = xs.size * ys.size

        if isinstance(constraint, str) and constraint.strip().lower() == "full":
            start = time.perf_counter()
            if abandon_threshold is not None:
                # The full grid expressed as a band: identical DP, but the
                # banded kernel supports early abandonment.
                banded_full = banded_dtw(
                    xs, ys, full_band(xs.size, ys.size),
                    self.config.pointwise_distance, return_path=return_path,
                    abandon_threshold=abandon_threshold,
                )
                dp_seconds = time.perf_counter() - start
                return SDTWResult(
                    distance=banded_full.distance,
                    constraint="full",
                    path=banded_full.path,
                    cells_filled=banded_full.cells_filled,
                    total_cells=total_cells,
                    dp_seconds=dp_seconds,
                    abandoned=banded_full.abandoned,
                )
            exact = dtw(xs, ys, self.config.pointwise_distance, return_path=return_path)
            dp_seconds = time.perf_counter() - start
            return SDTWResult(
                distance=exact.distance,
                constraint="full",
                path=exact.path,
                cells_filled=exact.cells_filled,
                total_cells=total_cells,
                dp_seconds=dp_seconds,
            )

        spec = parse_constraint_spec(constraint)
        needs_alignment = spec.core == "adaptive" or spec.width == "adaptive"

        extract_seconds = 0.0
        alignment: Optional[SDTWAlignment] = None
        if needs_alignment:
            _, ex = self.extract_features(xs)
            _, ey = self.extract_features(ys)
            extract_seconds = ex + ey
            alignment = self.align(xs, ys)

        band, alignment = self.build_band(xs, ys, spec, alignment)
        start = time.perf_counter()
        banded: BandedDTWResult = banded_dtw(
            xs, ys, band, self.config.pointwise_distance, return_path=return_path,
            abandon_threshold=abandon_threshold,
        )
        dp_seconds = time.perf_counter() - start
        return SDTWResult(
            distance=banded.distance,
            constraint=spec.label,
            path=banded.path,
            cells_filled=banded.cells_filled,
            total_cells=total_cells,
            extract_seconds=extract_seconds,
            matching_seconds=alignment.matching_seconds if alignment else 0.0,
            dp_seconds=dp_seconds,
            alignment=alignment,
            band=banded.band,
            abandoned=banded.abandoned,
        )

    def distance_matrix(
        self,
        series: Sequence[Union[Sequence[float], np.ndarray]],
        constraint: Union[str, ConstraintSpec] = "ac,aw",
    ) -> np.ndarray:
        """Pairwise distance matrix over a collection of series.

        The matrix is filled for every ordered pair ``(a, b)`` with
        ``a != b`` and then symmetrised by averaging, because the adaptive
        constraints are not symmetric in general (Section 3.3.3); the
        diagonal is zero.
        """
        arrays = [as_series(s, f"series[{k}]") for k, s in enumerate(series)]
        size = len(arrays)
        out = np.zeros((size, size))
        for a in range(size):
            for b in range(size):
                if a == b:
                    continue
                out[a, b] = self.distance(arrays[a], arrays[b], constraint).distance
        return (out + out.T) / 2.0


def sdtw_distance(
    x: Union[Sequence[float], np.ndarray],
    y: Union[Sequence[float], np.ndarray],
    constraint: Union[str, ConstraintSpec] = "ac,aw",
    config: Optional[SDTWConfig] = None,
) -> float:
    """One-shot sDTW distance between two series.

    Equivalent to ``SDTW(config).distance(x, y, constraint).distance`` but
    without retaining a feature cache.  Prefer the :class:`SDTW` object
    when comparing many series, so extraction is amortised.
    """
    engine = SDTW(config)
    return engine.distance(x, y, constraint).distance
