"""Salient-feature descriptors for 1-D time series.

Implements Step 2 of the paper's feature extraction (Section 3.1.2): around
each keypoint, gradient magnitudes of the series smoothed at the keypoint's
scale are sampled over a window whose extent is proportional to σ, weighted
by a Gaussian centred on the keypoint, and aggregated into ``2a`` temporal
cells of 2 bins each (increasing vs. decreasing gradients — the only two
"orientations" that exist in one dimension).  The resulting vector of
length ``2a × 2 = num_bins`` is L2-normalised, clipped, and renormalised to
obtain (partial) invariance to amplitude differences.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .._validation import as_series, check_positive
from ..utils.preprocessing import gaussian_smooth
from .config import DescriptorConfig


def _gradient(series: np.ndarray) -> np.ndarray:
    """Centred first difference of a series (same length as the input)."""
    return np.gradient(series)


def descriptor_window_radius(sigma: float, config: DescriptorConfig) -> int:
    """Half-width (in samples) of the region a descriptor covers.

    The window spans ``num_cells * samples_per_cell`` samples on each side
    of the keypoint, scaled by σ so that coarse-scale keypoints describe a
    proportionally larger temporal context — the property Figure 6 of the
    paper illustrates.
    """
    sigma = check_positive(sigma, "sigma")
    per_side = config.num_cells * config.samples_per_cell / 2.0
    return max(config.num_cells, int(round(per_side * max(sigma, 1.0))))


def compute_descriptor(
    series: Union[Sequence[float], np.ndarray],
    position: float,
    sigma: float,
    config: DescriptorConfig = None,
    *,
    smoothed: np.ndarray = None,
) -> np.ndarray:
    """Compute the 2a×2 gradient descriptor of a keypoint.

    Parameters
    ----------
    series:
        The original time series the keypoint was detected on.
    position:
        Keypoint centre in original-series coordinates.
    sigma:
        Absolute temporal scale of the keypoint.
    config:
        Descriptor parameters (length, weighting); defaults to 64 bins.
    smoothed:
        Optional pre-smoothed version of the series at the keypoint's σ; if
        omitted the series is smoothed here.

    Returns
    -------
    numpy.ndarray
        Descriptor vector of length ``config.num_bins``.
    """
    if config is None:
        config = DescriptorConfig()
    values = as_series(series, "series")
    sigma = check_positive(sigma, "sigma")
    if smoothed is None:
        smoothed = gaussian_smooth(values, sigma)
    else:
        smoothed = np.asarray(smoothed, dtype=float)
    gradients = _gradient(smoothed)

    num_cells = config.num_cells
    radius = descriptor_window_radius(sigma, config)
    window_start = position - radius
    window_length = 2.0 * radius
    cell_width = window_length / num_cells

    # Gaussian weighting centred on the keypoint.
    weight_sigma = config.gaussian_weight_factor * radius
    descriptor = np.zeros(num_cells * 2)

    center_index = int(round(position))
    lo = max(0, center_index - radius)
    hi = min(values.size - 1, center_index + radius)
    for sample in range(lo, hi + 1):
        offset = sample - position
        weight = np.exp(-(offset ** 2) / (2.0 * weight_sigma ** 2))
        cell = int((sample - window_start) / cell_width)
        cell = min(max(cell, 0), num_cells - 1)
        grad = gradients[sample]
        if grad >= 0:
            descriptor[cell * 2] += weight * grad
        else:
            descriptor[cell * 2 + 1] += weight * (-grad)

    if config.normalize:
        descriptor = _normalize_descriptor(descriptor, config.clip_value)
    return descriptor


def _normalize_descriptor(descriptor: np.ndarray, clip_value: float) -> np.ndarray:
    """L2-normalise, clip, and renormalise (the SIFT illumination rule)."""
    norm = np.linalg.norm(descriptor)
    if norm == 0:
        return descriptor
    descriptor = descriptor / norm
    descriptor = np.minimum(descriptor, clip_value)
    norm = np.linalg.norm(descriptor)
    if norm == 0:
        return descriptor
    return descriptor / norm


def descriptor_matrix(features: Sequence, num_bins: int) -> np.ndarray:
    """Stack the descriptors of many salient features into one dense matrix.

    The batch export consumed by the indexing subsystem's codebook
    (:mod:`repro.indexing.codebook`): one row per feature, descriptors
    shorter than *num_bins* zero-padded and longer ones truncated, so
    features extracted under mixed configurations still produce a
    rectangular matrix.

    Parameters
    ----------
    features:
        Objects with a ``descriptor`` array attribute
        (:class:`repro.core.features.SalientFeature` instances).
    num_bins:
        Number of descriptor columns of the output.

    Returns
    -------
    numpy.ndarray
        ``(len(features), num_bins)`` float matrix (empty when no
        features are given).
    """
    num_bins = int(check_positive(num_bins, "num_bins"))
    matrix = np.zeros((len(features), num_bins))
    for row, feature in enumerate(features):
        descriptor = np.asarray(feature.descriptor, dtype=float)
        length = min(descriptor.size, num_bins)
        matrix[row, :length] = descriptor[:length]
    return matrix


def descriptor_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Euclidean distance between two descriptors (Section 3.2.1)."""
    a = np.asarray(first, dtype=float)
    b = np.asarray(second, dtype=float)
    length = min(a.size, b.size)
    return float(np.linalg.norm(a[:length] - b[:length]))
