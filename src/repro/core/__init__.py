"""sDTW core: salient-feature-based locally relevant DTW constraints.

This subpackage implements the paper's contribution:

* :mod:`repro.core.config` — parameter objects with the paper's defaults.
* :mod:`repro.core.scale_space` — 1-D Gaussian scale space and
  difference-of-Gaussian series (Section 3.1.2, Step 1).
* :mod:`repro.core.keypoints` — ε-relaxed extrema detection and scope
  assignment.
* :mod:`repro.core.descriptors` — 2a×2 gradient-magnitude descriptors
  (Section 3.1.2, Step 2).
* :mod:`repro.core.features` — the :class:`SalientFeature` record and the
  end-to-end extraction pipeline.
* :mod:`repro.core.matching` — dominant matching pairs (Section 3.2.1).
* :mod:`repro.core.consistency` — inconsistency pruning via scope-boundary
  ordering (Section 3.2.2).
* :mod:`repro.core.intervals` — corresponding interval partitions.
* :mod:`repro.core.bands` — the fixed/adaptive core and width constraint
  bands (Section 3.3).
* :mod:`repro.core.sdtw` — the public :class:`SDTW` driver combining all
  of the above with the banded dynamic program.
"""

from .bands import build_constraint_band, parse_constraint_spec
from .config import DescriptorConfig, MatchingConfig, SDTWConfig, ScaleSpaceConfig
from .consistency import ConsistentAlignment, prune_inconsistent_pairs
from .descriptors import compute_descriptor
from .features import SalientFeature, extract_salient_features
from .intervals import IntervalPartition, build_interval_partition
from .keypoints import Keypoint, detect_keypoints
from .matching import MatchedPair, match_salient_features
from .multiscale import MultiscaleSDTWResult, multiscale_sdtw
from .scale_space import ScaleLevel, ScaleSpace, build_scale_space
from .sdtw import SDTW, SDTWAlignment, SDTWResult, sdtw_distance

__all__ = [
    "ConsistentAlignment",
    "DescriptorConfig",
    "IntervalPartition",
    "Keypoint",
    "MatchedPair",
    "MatchingConfig",
    "MultiscaleSDTWResult",
    "SDTW",
    "SDTWAlignment",
    "SDTWConfig",
    "SDTWResult",
    "SalientFeature",
    "ScaleLevel",
    "ScaleSpace",
    "ScaleSpaceConfig",
    "build_constraint_band",
    "build_interval_partition",
    "build_scale_space",
    "compute_descriptor",
    "detect_keypoints",
    "extract_salient_features",
    "match_salient_features",
    "multiscale_sdtw",
    "parse_constraint_spec",
    "prune_inconsistent_pairs",
    "sdtw_distance",
]
