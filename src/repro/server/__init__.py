"""The network service tier: serve a workspace over HTTP/JSON.

Three layers, one contract:

* :class:`WorkspaceServer` (``repro serve``) — an asyncio front end
  exposing ``/query``, ``/add``, ``/remove``, ``/stats``, ``/healthz``
  and ``/metrics`` over a workspace, with bounded admission control
  feeding the micro-batcher.
* :class:`ShardedWorkspace` — one logical workspace hash-partitioned
  across shard workspaces (in-process, served, or mixed) with
  scatter-gather k-NN merge that is bit-identical to querying a single
  workspace holding the same data.
* :class:`RemoteWorkspace` — the HTTP client, duck-typed to
  :meth:`repro.service.Workspace.query`.

All three speak the versioned query-result wire schema
(``WorkspaceQueryResult.to_dict()``/``from_dict()``; see
``docs/API.md``), so a result is the same object whether the query ran
in-process, against one server, or scattered across shards.
"""

from .app import DEFAULT_HOST, DEFAULT_PORT, WorkspaceServer
from .client import RemoteWorkspace
from .http import PROMETHEUS_CONTENT_TYPE
from .sharding import ShardedWorkspace, shard_of, split_workspace

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "PROMETHEUS_CONTENT_TYPE",
    "RemoteWorkspace",
    "ShardedWorkspace",
    "WorkspaceServer",
    "shard_of",
    "split_workspace",
]
