"""``RemoteWorkspace``: the HTTP client side of the query contract.

A :class:`RemoteWorkspace` is duck-typed to the query surface of
:class:`~repro.service.Workspace` — ``query`` takes the same arguments
and returns the same :class:`~repro.service.WorkspaceQueryResult`
(rebuilt from the versioned wire payload), ``add``/``remove``/``stats``
behave alike — so callers and benchmarks can swap an in-process
workspace for a served one without touching query code.

Errors keep their meaning across the wire: the server maps library
exceptions onto the ``{"error": {"type", ...}}`` payload, and this
client maps the payload back onto the same exception classes
(:class:`ValidationError`, :class:`DatasetError`,
:class:`WorkspaceError`).  Transport failures — connection refused,
mid-response hangups, non-contract responses — raise
:class:`RemoteWorkspaceError` instead, so "the workspace said no" and
"the wire is down" stay distinguishable.

Connections are kept alive and pooled per thread (one
``http.client.HTTPConnection`` per calling thread, stored in a
``threading.local``), which makes a single client object safe to share
across the concurrent load-generator threads the serving benchmark
uses.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import (
    DatasetError,
    RemoteWorkspaceError,
    ReproError,
    ValidationError,
    WorkspaceError,
)
from ..service.workspace import WorkspaceQueryResult
from .http import format_address, parse_url

#: Error-payload ``type`` values mapped back onto library exceptions.
#: Anything unrecognised raises plain :class:`ReproError` for 4xx/409
#: statuses and :class:`RemoteWorkspaceError` otherwise.
_ERROR_TYPES = {
    "ValidationError": ValidationError,
    "EmptySeriesError": ValidationError,
    "ConfigurationError": ValidationError,
    "DatasetError": DatasetError,
    "WorkspaceError": WorkspaceError,
}


class RemoteWorkspace:
    """A workspace served by ``repro serve``, addressed over HTTP.

    Usable as a context manager; :meth:`close` drops this thread's
    pooled connection (other threads' connections close when their
    threads die — they are plain kept-alive sockets, not daemons).
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._local = threading.local()

    @classmethod
    def connect(cls, url: str, *, timeout: float = 30.0) -> "RemoteWorkspace":
        """Build a client from an ``http://host:port`` URL."""
        host, port = parse_url(url)
        return cls(host, port, timeout=timeout)

    @property
    def url(self) -> str:
        return f"http://{format_address(self.host, self.port)}"

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> Tuple[int, str, bytes]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                return (
                    response.status,
                    response.headers.get("Content-Type", ""),
                    data,
                )
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as exc:
                # A kept-alive socket the server already closed fails on
                # first reuse; retry once on a fresh connection, then
                # report the wire as down.
                self._drop_connection()
                if attempt == 2:
                    raise RemoteWorkspaceError(
                        f"{method} {self.url}{path} failed: {exc}"
                    ) from exc
        raise AssertionError("unreachable")

    def _call(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> dict:
        status, _, data = self._request(method, path, payload)
        try:
            decoded = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RemoteWorkspaceError(
                f"{method} {self.url}{path} returned a non-JSON body "
                f"(status {status})"
            ) from exc
        if not isinstance(decoded, dict):
            raise RemoteWorkspaceError(
                f"{method} {self.url}{path} returned "
                f"{type(decoded).__name__}, expected a JSON object"
            )
        if status >= 400 or "error" in decoded:
            self._raise_remote_error(method, path, status, decoded)
        return decoded

    def _raise_remote_error(
        self, method: str, path: str, status: int, decoded: dict
    ) -> None:
        error = decoded.get("error")
        if not isinstance(error, dict):
            raise RemoteWorkspaceError(
                f"{method} {self.url}{path} failed with status {status} "
                f"and a body outside the error contract"
            )
        error_type = str(error.get("type", ""))
        message = str(error.get("message", ""))
        exc_class = _ERROR_TYPES.get(error_type)
        if exc_class is not None:
            raise exc_class(message)
        if error_type == "ProtocolError" and status == 400:
            # Server-side request validation (missing/ill-typed fields)
            # corresponds to what Workspace.query would reject locally.
            raise ValidationError(message)
        if status in (400, 404, 405, 409):
            raise ReproError(f"{error_type}: {message}")
        raise RemoteWorkspaceError(
            f"{method} {self.url}{path} failed "
            f"({status} {error_type}): {message}"
        )

    # ------------------------------------------------------------------ #
    # The workspace surface
    # ------------------------------------------------------------------ #
    def query(
        self,
        values: Union[Sequence[float], object],
        k: Optional[int] = None,
        *,
        mode: str = "auto",
        candidates: Optional[int] = None,
        exclude_identifier: Optional[str] = None,
        rank_mode: Optional[str] = None,
        trace: bool = False,
    ) -> WorkspaceQueryResult:
        """Mirror of :meth:`repro.service.Workspace.query` over HTTP.

        The extra ``trace`` flag asks the server to attach the query
        trace to the wire payload (``?trace=1``).
        """
        payload: Dict[str, object] = {
            "values": [float(v) for v in values],
            "mode": mode,
        }
        if k is not None:
            payload["k"] = int(k)
        if candidates is not None:
            payload["candidates"] = int(candidates)
        if exclude_identifier is not None:
            payload["exclude_identifier"] = str(exclude_identifier)
        if rank_mode is not None:
            payload["rank_mode"] = str(rank_mode)
        path = "/query?trace=1" if trace else "/query"
        return WorkspaceQueryResult.from_dict(self._call("POST", path, payload))

    def add(
        self,
        values: Union[Sequence[float], object],
        identifier: Optional[str] = None,
        label: Optional[int] = None,
    ) -> str:
        payload: Dict[str, object] = {
            "values": [float(v) for v in values],
        }
        if identifier is not None:
            payload["identifier"] = str(identifier)
        if label is not None:
            payload["label"] = int(label)
        return str(self._call("POST", "/add", payload)["identifier"])

    def remove(self, identifier: str) -> None:
        self._call("POST", "/remove", {"identifier": str(identifier)})

    def stats(self) -> Dict[str, object]:
        return self._call("GET", "/stats")

    def health(self) -> Dict[str, object]:
        """The server's ``/healthz`` report (per-shard when sharded)."""
        status, _, data = self._request("GET", "/healthz")
        try:
            decoded = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RemoteWorkspaceError(
                f"GET {self.url}/healthz returned a non-JSON body "
                f"(status {status})"
            ) from exc
        if not isinstance(decoded, dict):
            raise RemoteWorkspaceError(
                f"GET {self.url}/healthz returned "
                f"{type(decoded).__name__}, expected a JSON object"
            )
        # /healthz answers 503 with the degraded report as the body —
        # that report IS the answer, not an error.
        return decoded

    def metrics_prometheus(self) -> str:
        status, content_type, data = self._request("GET", "/metrics")
        if status != 200:
            raise RemoteWorkspaceError(
                f"GET {self.url}/metrics failed with status {status}"
            )
        if "text/plain" not in content_type:
            raise RemoteWorkspaceError(
                f"GET {self.url}/metrics returned content type "
                f"{content_type!r}, expected the Prometheus text format"
            )
        return data.decode("utf-8")

    @property
    def identifiers(self) -> List[str]:
        """The stored identifiers, in global insertion order."""
        stats = self.stats()
        identifiers = stats.get("identifiers")
        if not isinstance(identifiers, list):
            raise RemoteWorkspaceError(
                f"{self.url}/stats did not report 'identifiers'; is the "
                f"server running an older wire schema?"
            )
        return [str(i) for i in identifiers]

    def __len__(self) -> int:
        return int(self.stats()["num_series"])

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "RemoteWorkspace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"RemoteWorkspace({self.url!r})"


__all__ = ["RemoteWorkspace"]
