"""Hash-partitioned sharding with bit-identical scatter-gather k-NN.

One logical workspace is partitioned across several shard workspaces by
a stable hash of the series identifier (:func:`shard_of`), and
:class:`ShardedWorkspace` presents the shard set behind the same query
surface as a single :class:`~repro.service.Workspace`.  Shards are
duck-typed: in-process ``Workspace`` instances and
:class:`~repro.server.client.RemoteWorkspace` HTTP clients (one shard
per server process) mix freely, so the same scatter-gather code runs
the in-process and multi-process deployments.

Bit-identity contract
---------------------
A k-NN query fans out to every non-empty shard with the *full* budget
``k`` and the per-shard top-k lists are merged by ``(distance,
global insertion position)`` — exactly the ordering a single workspace
produces (its engine ranks by distance with ties broken by stored
position).  Because exact-mode distances depend only on the
(query, series) pair, the merged exact result is bit-identical to the
single-workspace result at every shard count.  Indexed mode is exact
*within its candidate set*: per-shard indexes spend their candidate
budget independently, so the sharded indexed result matches the
single-workspace one under the same condition the index itself
documents (bit-identical at ``candidate_budget >= shard size``,
high-recall approximate below it).

Degraded reads: with ``allow_partial=True`` a query whose shard
fan-out partially fails returns the merged hits of the answering
shards and lists the casualties in ``failed_shards``; the default is
to fail the query (complete results or an error).
"""

from __future__ import annotations

import dataclasses
import threading
import time
import zlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..engine.stats import EngineStats
from ..exceptions import ServerError, ValidationError, WorkspaceError
from ..service.workspace import Workspace, WorkspaceQueryResult
from ..telemetry.registry import NULL_REGISTRY, MetricsRegistry
from ..telemetry.trace import QueryTrace


def shard_of(identifier: str, num_shards: int) -> int:
    """The home shard of *identifier* (stable CRC-32 hash placement).

    Deterministic across processes and Python versions (unlike the
    builtin ``hash``), so a client and every server of a shard set
    agree on placement without coordination.
    """
    if num_shards < 1:
        raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
    return zlib.crc32(identifier.encode("utf-8")) % num_shards


class ShardedWorkspace:
    """One logical workspace hash-partitioned across shard workspaces.

    Parameters
    ----------
    shards:
        The shard workspaces, in shard order.  Anything duck-typed to
        the ``Workspace`` surface works (``query``/``add``/``remove``/
        ``stats``/``identifiers``); mixing in-process workspaces and
        :class:`~repro.server.client.RemoteWorkspace` clients is fine.
    names:
        Display names per shard (default ``shard-0`` ...); surfaced in
        per-shard health, ``shard_versions`` and metrics labels.
    roster:
        Global insertion order of the identifiers already stored across
        the shards.  Required for bit-identical tie-breaking when
        attaching to pre-populated shards whose interleaving this
        object did not observe; defaults to concatenating the shard
        rosters in shard order.
    allow_partial:
        Serve degraded reads when some (but not all) shards fail a
        query instead of raising.
    default_k:
        ``k`` used when a query omits it (mirrors
        ``WorkspaceConfig.default_k``).
    """

    def __init__(
        self,
        shards: Sequence[object],
        *,
        names: Optional[Sequence[str]] = None,
        roster: Optional[Sequence[str]] = None,
        allow_partial: bool = False,
        default_k: int = 5,
        telemetry: bool = True,
    ) -> None:
        if not shards:
            raise ValidationError("a sharded workspace needs >= 1 shard")
        self._shards: List[object] = list(shards)
        if names is None:
            names = [f"shard-{i}" for i in range(len(self._shards))]
        if len(names) != len(self._shards):
            raise ValidationError(
                f"got {len(names)} names for {len(self._shards)} shards"
            )
        self._names: List[str] = [str(name) for name in names]
        self._allow_partial = bool(allow_partial)
        self._default_k = int(default_k)
        self._lock = threading.RLock()
        self._placement: Dict[str, int] = {}
        self._counts: List[int] = [0] * len(self._shards)
        for index, shard in enumerate(self._shards):
            for identifier in shard.identifiers:
                if identifier in self._placement:
                    raise ServerError(
                        f"identifier {identifier!r} is stored on more than "
                        f"one shard; the shard set is not a partition"
                    )
                self._placement[identifier] = index
                self._counts[index] += 1
        if roster is None:
            roster = [
                identifier
                for shard in self._shards
                for identifier in shard.identifiers
            ]
        self._roster: List[str] = [str(identifier) for identifier in roster]
        if set(self._roster) != set(self._placement) \
                or len(self._roster) != len(self._placement):
            raise ServerError(
                "roster does not list exactly the identifiers stored "
                "across the shards"
            )
        # Construction-time telemetry decision (null-object pattern —
        # RPR204: no truthiness branches on telemetry downstream).
        self._metrics: MetricsRegistry = (
            NULL_REGISTRY if telemetry is False else MetricsRegistry()
        )
        m = self._metrics
        self._m_queries = m.counter(
            "repro_sharded_queries_total",
            "Scatter-gather queries by outcome (complete / partial).",
            labels=("outcome",),
        )
        self._m_query_seconds = m.histogram(
            "repro_sharded_query_seconds",
            "End-to-end scatter-gather query wall time.",
        )
        self._m_shard_errors = m.counter(
            "repro_shard_errors_total",
            "Failed shard sub-queries, by shard.",
            labels=("shard",),
        )
        self._g_shards = m.gauge(
            "repro_shards", "Shards in the logical workspace."
        )
        self._g_shards.set(len(self._shards))
        self._g_shard_live = m.gauge(
            "repro_shard_live_series", "Live series per shard.",
            labels=("shard",),
        )
        self._g_shard_healthy = m.gauge(
            "repro_shard_healthy",
            "1 when the shard answered its last health probe, else 0.",
            labels=("shard",),
        )
        self._g_shard_snapshot = m.gauge(
            "repro_shard_snapshot_version",
            "Serving snapshot version last reported per shard.",
            labels=("shard",),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_names(self) -> List[str]:
        return list(self._names)

    @property
    def identifiers(self) -> List[str]:
        """Stored identifiers in global insertion order."""
        with self._lock:
            return list(self._roster)

    def __len__(self) -> int:
        with self._lock:
            return len(self._roster)

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    # ------------------------------------------------------------------ #
    # Mutation (routed by identifier hash)
    # ------------------------------------------------------------------ #
    def add(
        self,
        values: Union[Sequence[float], np.ndarray],
        identifier: Optional[str] = None,
        label: Optional[int] = None,
    ) -> str:
        """Add one series to its hash-designated shard.

        Auto-generated identifiers follow the single-workspace scheme
        (``series-%05d`` skipping taken names) against the *global*
        roster, so a workload moved from one workspace to a shard set
        keeps producing the same names.
        """
        with self._lock:
            if identifier is None:
                counter = len(self._roster)
                taken = set(self._roster)
                identifier = f"series-{counter:05d}"
                while identifier in taken:
                    counter += 1
                    identifier = f"series-{counter:05d}"
            else:
                identifier = str(identifier)
                if identifier in self._placement:
                    raise ValidationError(
                        f"identifier {identifier!r} is already stored in "
                        f"this workspace"
                    )
            home = shard_of(identifier, len(self._shards))
            self._shards[home].add(values, identifier=identifier, label=label)
            self._roster.append(identifier)
            self._placement[identifier] = home
            self._counts[home] += 1
            return identifier

    def remove(self, identifier: str) -> None:
        """Remove one series from the shard that stores it."""
        with self._lock:
            identifier = str(identifier)
            home = self._placement.get(identifier)
            if home is None:
                raise WorkspaceError(
                    f"no series stored under identifier {identifier!r}"
                )
            self._shards[home].remove(identifier)
            self._roster.remove(identifier)
            del self._placement[identifier]
            self._counts[home] -= 1

    def build_index(self, **kwargs: object) -> None:
        """(Re)build the inverted index on every non-empty shard."""
        with self._lock:
            targets = [
                shard for shard, count in zip(self._shards, self._counts)
                if count
            ]
        for shard in targets:
            shard.build_index(**kwargs)

    # ------------------------------------------------------------------ #
    # Scatter-gather query
    # ------------------------------------------------------------------ #
    def query(
        self,
        values: Union[Sequence[float], np.ndarray],
        k: Optional[int] = None,
        *,
        mode: str = "auto",
        candidates: Optional[int] = None,
        exclude_identifier: Optional[str] = None,
        rank_mode: Optional[str] = None,
    ) -> WorkspaceQueryResult:
        """k nearest stored series, scatter-gathered across the shards.

        Signature-compatible with :meth:`Workspace.query`; the merged
        result carries per-shard snapshot versions in
        ``shard_versions`` and — for degraded reads — the shards that
        failed in ``failed_shards``.
        """
        started = time.perf_counter()
        k = self._default_k if k is None else int(k)
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        with self._lock:
            order = {
                identifier: position
                for position, identifier in enumerate(self._roster)
            }
            targets = [
                (self._names[i], self._shards[i])
                for i, count in enumerate(self._counts)
                if count
            ]
        if not targets:
            raise WorkspaceError(
                "cannot query an empty workspace (no live series)"
            )

        outcomes: List[object] = [None] * len(targets)

        def scatter(slot: int, shard: object) -> None:
            try:
                outcomes[slot] = shard.query(
                    values, k,
                    mode=mode,
                    candidates=candidates,
                    exclude_identifier=exclude_identifier,
                    rank_mode=rank_mode,
                )
            except BaseException as exc:  # noqa: BLE001 - gathered below
                outcomes[slot] = exc

        if len(targets) == 1:
            scatter(0, targets[0][1])
        else:
            threads = [
                threading.Thread(
                    target=scatter, args=(slot, shard),
                    name=f"repro-scatter-{name}", daemon=True,
                )
                for slot, (name, shard) in enumerate(targets)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        answered: List[Tuple[str, WorkspaceQueryResult]] = []
        failed: List[Tuple[str, BaseException]] = []
        for (name, _), outcome in zip(targets, outcomes):
            if isinstance(outcome, WorkspaceQueryResult):
                answered.append((name, outcome))
            else:
                self._m_shard_errors.labels(shard=name).inc()
                failed.append((name, outcome))
        if failed:
            # Validation failures are the caller's bug, not shard
            # unavailability: re-raise them verbatim so the sharded and
            # single-workspace surfaces reject bad input identically.
            for _, exc in failed:
                if isinstance(exc, (ValidationError, TypeError)):
                    raise exc
            if not self._allow_partial or not answered:
                name, exc = failed[0]
                raise WorkspaceError(
                    f"shard {name!r} failed the scatter fan-out "
                    f"({len(failed)}/{len(targets)} shards down): {exc}"
                ) from exc

        merged = self._merge(answered, order, k, mode)
        merged = dataclasses.replace(
            merged,
            failed_shards=tuple(name for name, _ in failed),
        )
        elapsed = time.perf_counter() - started
        if merged.trace is not None:
            # Shard stages overlap in time (parallel fan-out), so the
            # stage sum may exceed the sealed end-to-end wall time —
            # unlike single-workspace traces, which account exactly.
            merged.trace.finish(elapsed)
        self._m_queries.labels(
            outcome="partial" if failed else "complete"
        ).inc()
        self._m_query_seconds.observe(elapsed)
        return merged

    def _merge(
        self,
        answered: List[Tuple[str, WorkspaceQueryResult]],
        order: Dict[str, int],
        k: int,
        requested_mode: str,
    ) -> WorkspaceQueryResult:
        """Merge per-shard top-k lists into the global result.

        The merge key ``(distance, global insertion position)`` equals
        the single-workspace engine's ordering, and hit ``index``
        fields are remapped from shard-local to global live-roster
        positions — so a complete merge is bit-identical (ids, indices,
        distances, labels) to the unsharded query.
        """
        results = [result for _, result in answered]
        ranked = sorted(
            (hit for result in results for hit in result.hits),
            key=lambda hit: (hit.distance, order[hit.identifier]),
        )[:k]
        hits = tuple(
            dataclasses.replace(hit, index=order[hit.identifier])
            for hit in ranked
        )
        modes = {result.mode for result in results}
        mode = modes.pop() if len(modes) == 1 else "mixed"
        trace = self._merge_traces(answered)
        return WorkspaceQueryResult(
            hits=hits,
            mode=mode,
            requested_mode=str(requested_mode),
            k=k,
            collection_size=sum(r.collection_size for r in results),
            candidates_generated=sum(r.candidates_generated for r in results),
            # Shards answer in parallel: the merged per-stage walls are
            # the fan-out's critical path, not the sum of shard walls.
            generation_seconds=max(r.generation_seconds for r in results),
            rerank_seconds=max(r.rerank_seconds for r in results),
            stats=EngineStats.merged([r.stats for r in results]),
            queue_wait_seconds=max(r.queue_wait_seconds for r in results),
            trace=trace,
            snapshot_version=max(r.snapshot_version for r in results),
            shard_versions=tuple(
                (name, result.snapshot_version) for name, result in answered
            ),
        )

    @staticmethod
    def _merge_traces(
        answered: List[Tuple[str, WorkspaceQueryResult]]
    ) -> Optional[QueryTrace]:
        """One scatter-level trace with a stage per answering shard."""
        if all(result.trace is None for _, result in answered):
            return None
        reference = next(
            result.trace for _, result in answered
            if result.trace is not None
        )
        trace = QueryTrace(
            mode=reference.mode,
            requested_mode=reference.requested_mode,
            k=reference.k,
            collection_size=sum(
                result.collection_size for _, result in answered
            ),
            candidates_generated=sum(
                result.candidates_generated for _, result in answered
            ),
        )
        for name, result in answered:
            attributes: Dict[str, object] = {
                "shard": name,
                "mode": result.mode,
                "snapshot_version": result.snapshot_version,
            }
            seconds = result.elapsed_seconds
            if result.trace is not None:
                seconds = result.trace.total_seconds
            trace.add_stage(f"shard:{name}", seconds, **attributes)
        trace.attributes["shards"] = len(answered)
        return trace

    # ------------------------------------------------------------------ #
    # Health / stats / metrics
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        """Per-shard liveness: probes every shard's ``stats()``.

        ``status`` is ``ok`` (all shards answered), ``degraded`` (some
        did) or ``failed`` (none did); the per-shard entries carry live
        series counts and snapshot versions for the shards that
        answered and the error string for those that did not.
        """
        entries: List[Dict[str, object]] = []
        healthy = 0
        for name, shard in zip(self._names, self._shards):
            try:
                stats = shard.stats()
            except Exception as exc:  # noqa: BLE001 - probe, not query
                self._g_shard_healthy.labels(shard=name).set(0)
                entries.append({
                    "shard": name,
                    "healthy": False,
                    "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            healthy += 1
            self._g_shard_healthy.labels(shard=name).set(1)
            self._g_shard_live.labels(shard=name).set(
                int(stats.get("num_series", 0))
            )
            self._g_shard_snapshot.labels(shard=name).set(
                int(stats.get("snapshot_version", 0))
            )
            entries.append({
                "shard": name,
                "healthy": True,
                "num_series": stats.get("num_series", 0),
                "snapshot_version": stats.get("snapshot_version", 0),
                "has_index": stats.get("index") is not None,
            })
        if healthy == len(self._shards):
            status = "ok"
        elif healthy:
            status = "degraded"
        else:
            status = "failed"
        return {
            "status": status,
            "allow_partial": self._allow_partial,
            "num_shards": len(self._shards),
            "healthy_shards": healthy,
            "shards": entries,
        }

    def stats(self) -> Dict[str, object]:
        """Workspace-shaped summary plus the per-shard health report."""
        health = self.health()
        with self._lock:
            num_series = len(self._roster)
            identifiers = list(self._roster)
        return {
            "path": None,
            "num_series": num_series,
            "identifiers": identifiers,
            "snapshot_version": max(
                (int(entry.get("snapshot_version", 0))
                 for entry in health["shards"] if entry.get("healthy")),
                default=0,
            ),
            "sharding": health,
        }

    def metrics_prometheus(self) -> str:
        """Prometheus text for the scatter-gather tier.

        Renders this object's own registry (fan-out counters, per-shard
        health/liveness gauges refreshed by a health probe); per-shard
        engine metrics stay on the shards, each of which exposes its own
        ``/metrics`` when served individually.
        """
        self.health()
        return self._metrics.render_prometheus()

    def close(self) -> None:
        """Close every shard (best effort: all are attempted)."""
        for shard in self._shards:
            close = getattr(shard, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # noqa: BLE001 - best-effort shutdown
                    pass


def split_workspace(
    source: Workspace,
    num_shards: int,
    *,
    build_index: Optional[bool] = None,
    allow_partial: bool = False,
) -> ShardedWorkspace:
    """Partition one workspace into an in-process shard set.

    Every stored series moves to its :func:`shard_of` home shard (same
    config, in-memory); the source's insertion order becomes the global
    roster, preserving single-workspace tie-breaking.  ``build_index``
    defaults to mirroring the source (shards index themselves when the
    source has a fresh index); empty shards are left unindexed.
    """
    if num_shards < 1:
        raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
    shards = [Workspace(source.config) for _ in range(num_shards)]
    labels = dict(zip(source.identifiers, source.labels))
    for identifier in source.identifiers:
        home = shard_of(identifier, num_shards)
        shards[home].add(
            source.series_of(identifier),
            identifier=identifier,
            label=labels[identifier],
        )
    sharded = ShardedWorkspace(
        shards,
        roster=source.identifiers,
        allow_partial=allow_partial,
        default_k=source.config.default_k,
    )
    if build_index is None:
        build_index = source.has_index
    if build_index:
        sharded.build_index()
    return sharded


__all__ = ["ShardedWorkspace", "shard_of", "split_workspace"]
