"""A tiny hand-rolled HTTP/1.1 layer over :mod:`asyncio` streams.

The serving tier deliberately avoids a web framework: the container has
no HTTP dependencies and the server speaks a six-route JSON protocol,
so the whole wire layer fits in request parsing + response rendering
over ``asyncio.StreamReader``/``StreamWriter``.  Supported surface:

* request line + headers + ``Content-Length`` bodies (no chunked
  transfer encoding — the JSON protocol never needs it);
* ``keep-alive`` connection reuse (HTTP/1.1 default; ``Connection:
  close`` honoured both ways);
* bounded request sizes: header lines are capped by the stream reader's
  limit and bodies by ``max_body_bytes`` (413 on overflow).

Malformed input raises :class:`ProtocolError` carrying the HTTP status
the connection handler should answer with before closing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..exceptions import ServerError

#: Upper bound on request bodies accepted by :func:`read_request`
#: unless the caller overrides it — large enough for batch adds of
#: long series, small enough to bound a misbehaving client.
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024

#: StreamReader line limit: bounds the request line and each header.
MAX_LINE_BYTES = 16 * 1024

#: Cap on the number of request headers (header-flood guard).
MAX_HEADERS = 64

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Prometheus text exposition format 0.0.4 — the content type scrapers
#: negotiate; ``/metrics`` responses carry it verbatim.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ProtocolError(ServerError):
    """A request violated the HTTP subset this server speaks.

    ``status`` is the HTTP status code the connection handler answers
    with before closing the connection.
    """

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HTTPRequest:
    """One parsed request: method, split path/query, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        """The body decoded as a JSON object (400 on anything else)."""
        if not self.body:
            raise ProtocolError("request body is empty; expected JSON")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") \
                from exc
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return payload


@dataclass
class HTTPResponse:
    """One response: status, body bytes and content type."""

    status: int
    body: bytes
    content_type: str = JSON_CONTENT_TYPE
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_json(cls, status: int, payload: object,
                  **headers: str) -> "HTTPResponse":
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        return cls(status, body, JSON_CONTENT_TYPE, dict(headers))

    @classmethod
    def error(cls, status: int, error_type: str,
              message: str, **headers: str) -> "HTTPResponse":
        """The error payload contract: ``{"error": {"type", "message"}}``."""
        return cls.from_json(
            status,
            {"error": {"type": error_type, "message": message,
                       "status": status}},
            **headers,
        )


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ProtocolError(
            f"request line or header exceeds {MAX_LINE_BYTES} bytes",
            status=400,
        ) from exc
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line or header exceeds {MAX_LINE_BYTES} bytes",
            status=400,
        )
    return line


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Optional[HTTPRequest]:
    """Parse one request off *reader*.

    Returns ``None`` on a clean EOF before any bytes (client closed a
    kept-alive connection) and raises :class:`ProtocolError` on input
    that is not the HTTP subset this server speaks.
    """
    line = await _read_line(reader)
    if not line:
        return None
    try:
        method, target, http_version = line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(f"malformed request line {line[:80]!r}") from None
    if not http_version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol {http_version!r}")

    headers: Dict[str, str] = {}
    while True:
        raw = await _read_line(reader)
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise ProtocolError("connection closed mid-headers")
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError(f"more than {MAX_HEADERS} request headers")
        try:
            name, sep, value = raw.decode("ascii").partition(":")
        except UnicodeDecodeError:
            raise ProtocolError("non-ASCII bytes in request headers") \
                from None
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError(
                f"malformed Content-Length {length_header!r}"
            ) from None
        if length < 0:
            raise ProtocolError(f"negative Content-Length {length}")
        if length > max_body_bytes:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
                status=413,
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    elif "transfer-encoding" in headers:
        raise ProtocolError(
            "chunked transfer encoding is not supported; send "
            "Content-Length"
        )

    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    return HTTPRequest(
        method=method.upper(),
        path=parts.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(response: HTTPResponse, *, keep_alive: bool) -> bytes:
    """Serialize *response* as HTTP/1.1 bytes ready for the transport."""
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + response.body


def format_address(host: str, port: int) -> str:
    """``host:port`` with IPv6 hosts bracketed."""
    if ":" in host:
        return f"[{host}]:{port}"
    return f"{host}:{port}"


def parse_url(url: str) -> Tuple[str, int]:
    """``(host, port)`` from an ``http://host:port`` server URL."""
    parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
    if parts.scheme != "http":
        raise ServerError(
            f"unsupported URL scheme {parts.scheme!r} in {url!r}; the "
            f"serving tier speaks plain http"
        )
    if not parts.hostname:
        raise ServerError(f"no host in server URL {url!r}")
    return parts.hostname, parts.port if parts.port is not None else 80


__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "HTTPRequest",
    "HTTPResponse",
    "JSON_CONTENT_TYPE",
    "PROMETHEUS_CONTENT_TYPE",
    "ProtocolError",
    "format_address",
    "parse_url",
    "read_request",
    "render_response",
]
