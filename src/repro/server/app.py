"""``WorkspaceServer``: the asyncio HTTP/JSON front end.

One server exposes one workspace — a plain
:class:`~repro.service.Workspace` or a
:class:`~repro.server.sharding.ShardedWorkspace` (scatter-gather) —
over six routes:

========  ==========  ====================================================
method    path        behaviour
========  ==========  ====================================================
POST      /query      k-NN query; responds with the versioned
                      ``repro-query-result`` wire payload
                      (``?trace=0/1`` controls the trace attachment)
POST      /add        store one series; ``{"identifier", "num_series"}``
POST      /remove     drop one series; ``{"removed", "num_series"}``
GET       /stats      workspace summary (per-shard health when sharded)
GET       /healthz    liveness: 200 ok/degraded, 503 failed
GET       /metrics    Prometheus text exposition format 0.0.4
========  ==========  ====================================================

Concurrency model: the asyncio loop parses requests and writes
responses; workspace calls run on a bounded thread pool
(``max_inflight`` workers), so concurrent queries genuinely overlap
and — with ``ServingConfig.micro_batch`` on — coalesce through the
workspace's :class:`~repro.service.batching.MicroBatcher` into
vectorised engine batches.  Admission control is two-level: up to
``max_inflight`` requests execute, up to ``max_pending`` more wait,
and anything beyond is refused immediately with 503 instead of
building an unbounded queue.

The error payload contract mirrors the library's exception hierarchy:
invalid input (:class:`ValidationError`, malformed JSON/HTTP) is 400,
operational workspace failures (:class:`WorkspaceError` — stale index,
empty workspace, closed workspace) are 409, unexpected exceptions are
500, overload is 503.  Bodies are always
``{"error": {"type", "message", "status"}}``.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from ..exceptions import (
    DatasetError,
    ReproError,
    ServerError,
    ValidationError,
    WorkspaceError,
)
from ..telemetry.events import json_safe
from .http import (
    DEFAULT_MAX_BODY_BYTES,
    HTTPRequest,
    HTTPResponse,
    PROMETHEUS_CONTENT_TYPE,
    ProtocolError,
    format_address,
    read_request,
    render_response,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def _parse_flag(raw: str, name: str) -> bool:
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    raise ProtocolError(
        f"query parameter {name}={raw!r} is not a boolean (use 0/1)"
    )


class WorkspaceServer:
    """Serve one workspace over HTTP (see module docstring).

    Parameters
    ----------
    workspace:
        A :class:`~repro.service.Workspace` or
        :class:`~repro.server.sharding.ShardedWorkspace` (anything
        duck-typed to query/add/remove/stats/metrics_prometheus).
    host, port:
        Bind address; port 0 picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    max_inflight:
        Workspace calls executing concurrently (thread-pool width).
    max_pending:
        Additional requests allowed to wait for a worker before new
        arrivals are refused with 503.
    default_mode, default_k, default_trace:
        Applied to ``/query`` requests that omit the field; ``None``
        for ``default_k`` defers to the workspace's configured default.
    """

    def __init__(
        self,
        workspace: object,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_inflight: int = 8,
        max_pending: int = 64,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        default_mode: str = "auto",
        default_k: Optional[int] = None,
        default_trace: bool = False,
    ) -> None:
        if max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_pending < 0:
            raise ValidationError(
                f"max_pending must be >= 0, got {max_pending}"
            )
        self.workspace = workspace
        self.host = host
        self.port = port
        self._max_inflight = max_inflight
        self._max_pending = max_pending
        self._max_body_bytes = max_body_bytes
        self._default_mode = default_mode
        self._default_k = default_k
        self._default_trace = default_trace
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )
        # Touched only on the event-loop thread (asyncio is single
        # threaded), so plain attributes are race-free here.
        self._inflight = 0
        self._refused = 0
        self._requests_served = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        return f"http://{format_address(self.host, self.port)}"

    def serve_forever(self) -> None:
        """Run the server on the calling thread until interrupted."""
        self._run_loop()
        if self._startup_error is not None:
            raise self._startup_error

    def start(self, *, timeout: float = 10.0) -> "WorkspaceServer":
        """Run the server on a daemon thread; returns once it is bound.

        The bound port is published on :attr:`port` (useful with
        ``port=0``); :meth:`stop` shuts the thread down.
        """
        if self._thread is not None:
            raise ServerError("this server has already been started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServerError(
                f"server did not bind {format_address(self.host, self.port)} "
                f"within {timeout:.0f}s"
            )
        if self._startup_error is not None:
            raise ServerError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for a :meth:`start`-ed server's loop thread to exit;
        returns whether it is still running."""
        if self._thread is None:
            return False
        self._thread.join(timeout)
        return self._thread.is_alive()

    def stop(self, *, timeout: float = 10.0) -> None:
        """Stop a :meth:`start`-ed server and release its resources."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "WorkspaceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = None
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_connection, self.host, self.port,
                    limit=64 * 1024,
                )
            )
            self.port = server.sockets[0].getsockname()[1]
        except BaseException as exc:  # noqa: BLE001 - surfaced by start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            # Idle keep-alive connections sit parked in read_request();
            # cancel them so the loop closes without orphaned tasks.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self._max_body_bytes
                    )
                except ProtocolError as exc:
                    writer.write(render_response(
                        HTTPResponse.error(
                            exc.status, "ProtocolError", str(exc)
                        ),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                self._requests_served += 1
                keep_alive = request.keep_alive
                writer.write(render_response(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            # Only _run_loop's shutdown path cancels handler tasks;
            # swallow so idle keep-alive connections close quietly.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # A task cancelled by shutdown re-raises from any await,
                # including this close handshake; the transport is torn
                # down with the loop either way.
                pass

    async def _dispatch(self, request: HTTPRequest) -> HTTPResponse:
        routes = {
            "/query": ("POST", self._handle_query),
            "/add": ("POST", self._handle_add),
            "/remove": ("POST", self._handle_remove),
            "/stats": ("GET", self._handle_stats),
            "/healthz": ("GET", self._handle_healthz),
            "/metrics": ("GET", self._handle_metrics),
        }
        route = routes.get(request.path)
        if route is None:
            return HTTPResponse.error(
                404, "NotFound", f"no route for {request.path!r}"
            )
        method, handler = route
        if request.method != method:
            return HTTPResponse.error(
                405, "MethodNotAllowed",
                f"{request.path} only accepts {method}",
                Allow=method,
            )
        try:
            return await handler(request)
        except ProtocolError as exc:
            return HTTPResponse.error(exc.status, "ProtocolError", str(exc))
        except (ValidationError, DatasetError) as exc:
            return HTTPResponse.error(400, type(exc).__name__, str(exc))
        except WorkspaceError as exc:
            return HTTPResponse.error(409, type(exc).__name__, str(exc))
        except ReproError as exc:
            return HTTPResponse.error(400, type(exc).__name__, str(exc))
        except Exception as exc:  # noqa: BLE001 - survive handler bugs
            return HTTPResponse.error(500, type(exc).__name__, str(exc))

    async def _run_blocking(self, call) -> object:
        """Run one workspace call on the pool under admission control."""
        if self._inflight >= self._max_inflight + self._max_pending:
            self._refused += 1
            raise ProtocolError(
                f"server is at capacity ({self._inflight} requests in "
                f"flight); retry later",
                status=503,
            )
        self._inflight += 1
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._executor, call
            )
        finally:
            self._inflight -= 1

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    async def _handle_query(self, request: HTTPRequest) -> HTTPResponse:
        payload = request.json()
        values = payload.get("values")
        if not isinstance(values, list) or not values:
            raise ProtocolError(
                "'values' must be a non-empty JSON array of numbers"
            )
        k = payload.get("k", self._default_k)
        if k is not None:
            if isinstance(k, bool) or not isinstance(k, int):
                raise ProtocolError(f"'k' must be an integer, got {k!r}")
        mode = payload.get("mode", self._default_mode)
        candidates = payload.get("candidates")
        if candidates is not None and not isinstance(candidates, int):
            raise ProtocolError("'candidates' must be an integer")
        want_trace = self._default_trace
        if "trace" in request.query:
            want_trace = _parse_flag(request.query["trace"], "trace")
        elif "trace" in payload:
            want_trace = bool(payload["trace"])
        result = await self._run_blocking(functools.partial(
            self.workspace.query,
            values,
            k,
            mode=str(mode),
            candidates=candidates,
            exclude_identifier=payload.get("exclude_identifier"),
            rank_mode=payload.get("rank_mode"),
        ))
        return HTTPResponse.from_json(
            200, result.to_dict(include_trace=want_trace)
        )

    async def _handle_add(self, request: HTTPRequest) -> HTTPResponse:
        payload = request.json()
        values = payload.get("values")
        if not isinstance(values, list) or not values:
            raise ProtocolError(
                "'values' must be a non-empty JSON array of numbers"
            )
        label = payload.get("label")
        if label is not None and (isinstance(label, bool)
                                  or not isinstance(label, int)):
            raise ProtocolError(f"'label' must be an integer, got {label!r}")
        identifier = payload.get("identifier")
        stored = await self._run_blocking(functools.partial(
            self.workspace.add,
            values,
            identifier=None if identifier is None else str(identifier),
            label=label,
        ))
        return HTTPResponse.from_json(
            200,
            {"identifier": stored, "num_series": len(self.workspace)},
        )

    async def _handle_remove(self, request: HTTPRequest) -> HTTPResponse:
        payload = request.json()
        identifier = payload.get("identifier")
        if not isinstance(identifier, str) or not identifier:
            raise ProtocolError("'identifier' must be a non-empty string")
        await self._run_blocking(functools.partial(
            self.workspace.remove, identifier
        ))
        return HTTPResponse.from_json(
            200,
            {"removed": identifier, "num_series": len(self.workspace)},
        )

    async def _handle_stats(self, request: HTTPRequest) -> HTTPResponse:
        stats = await self._run_blocking(self.workspace.stats)
        stats = dict(stats)
        stats["server"] = self.server_stats()
        return HTTPResponse.from_json(200, json_safe(stats))

    async def _handle_healthz(self, request: HTTPRequest) -> HTTPResponse:
        health = getattr(self.workspace, "health", None)
        if callable(health):
            report = await self._run_blocking(health)
        else:
            report = {
                "status": "ok",
                "num_series": len(self.workspace),
            }
        status = 503 if report.get("status") == "failed" else 200
        return HTTPResponse.from_json(status, json_safe(report))

    async def _handle_metrics(self, request: HTTPRequest) -> HTTPResponse:
        text = await self._run_blocking(self.workspace.metrics_prometheus)
        return HTTPResponse(
            200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
        )

    def server_stats(self) -> Dict[str, object]:
        """The admission-control counters surfaced under ``/stats``."""
        return {
            "inflight": self._inflight,
            "max_inflight": self._max_inflight,
            "max_pending": self._max_pending,
            "refused_total": self._refused,
            "requests_served": self._requests_served,
        }


__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "WorkspaceServer"]
