"""Command-line interface.

Two entry points are installed:

* ``repro-sdtw`` (or ``python -m repro``) with sub-commands:

  - ``experiment <id>`` — run one of the table/figure reproductions and
    print the resulting table (optionally also write CSV).
  - ``distance <dataset> <i> <j>`` — compute the distance between two
    series of a registered data set under one or more constraints.
  - ``datasets`` — list the registered data sets.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .core.sdtw import SDTW
from .core.config import SDTWConfig
from .datasets.registry import available_datasets, load_dataset
from .exceptions import ExperimentError, ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sdtw",
        description="sDTW reproduction (Candan et al., VLDB 2012): "
                    "experiments and distance computations.",
    )
    subparsers = parser.add_subparsers(dest="command")

    exp = subparsers.add_parser("experiment", help="run a table/figure reproduction")
    exp.add_argument("experiment_id",
                     help="one of: table1, table2, fig13, fig14, fig15, fig16, "
                          "fig17, fig18")
    exp.add_argument("--num-series", type=int, default=None,
                     help="series sampled per data set (default: experiment-specific)")
    exp.add_argument("--seed", type=int, default=7, help="generation/sampling seed")
    exp.add_argument("--csv", metavar="PATH", default=None,
                     help="also write the rows to a CSV file")

    dist = subparsers.add_parser("distance",
                                 help="compute the distance between two series")
    dist.add_argument("dataset", help="registered data-set name or UCR file path")
    dist.add_argument("first", type=int, help="index of the first series")
    dist.add_argument("second", type=int, help="index of the second series")
    dist.add_argument("--constraint", action="append", default=None,
                      help="constraint label (repeatable); defaults to all")
    dist.add_argument("--seed", type=int, default=7, help="generation seed")

    subparsers.add_parser("datasets", help="list the registered data sets")
    return parser


def _run_experiment(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS

    key = args.experiment_id.lower()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(f"unknown experiment {key!r}; known: {known}")
    kwargs = {"seed": args.seed}
    if args.num_series is not None:
        kwargs["num_series"] = args.num_series
    result = EXPERIMENTS[key](**kwargs)
    print(result.to_text())
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(result.to_csv())
        print(f"CSV written to {args.csv}")
    return 0


def _run_distance(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed)
    constraints = args.constraint or [
        "full", "fc,fw", "fc,aw", "ac,fw", "ac,aw", "ac2,aw"
    ]
    for index in (args.first, args.second):
        if not 0 <= index < len(dataset):
            raise ExperimentError(
                f"series index {index} out of range for {dataset.name} "
                f"({len(dataset)} series)"
            )
    x = dataset[args.first].values
    y = dataset[args.second].values
    engine = SDTW(SDTWConfig())
    print(f"Data set {dataset.name}: series {args.first} vs {args.second} "
          f"(lengths {x.size} and {y.size})")
    for constraint in constraints:
        result = engine.distance(x, y, constraint=constraint)
        print(f"  {constraint:8s} distance={result.distance:10.4f} "
              f"cells={result.cells_filled:8d}/{result.total_cells:<8d} "
              f"savings={result.cell_savings:6.1%}")
    return 0


def _run_datasets() -> int:
    for name in available_datasets():
        print(name)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command is None:
        parser.print_help()
        return 1
    try:
        if args.command == "experiment":
            return _run_experiment(args)
        if args.command == "distance":
            return _run_distance(args)
        if args.command == "datasets":
            return _run_datasets()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":
    sys.exit(main())
