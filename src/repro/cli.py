"""Command-line interface.

Two entry points are installed:

* ``repro-sdtw`` (or ``python -m repro``) with sub-commands:

  - ``workspace init | add | query | stats`` — the service front door:
    create a persistent :class:`~repro.service.Workspace`, add data-set
    series to it (optionally building the inverted index), answer k-NN
    queries in ``auto`` / ``exact`` / ``indexed`` mode and inspect the
    workspace state.
  - ``workspace doctor | profile | flight-record`` — the diagnostics
    surfaces: run the invariant checker (exit 1 on any FAIL), record a
    sampling-profiler window over replayed queries, or dump the flight
    record (recent events + traces + metrics + config) as JSON.
  - ``serve`` — expose a workspace over HTTP/JSON (``/query``, ``/add``,
    ``/remove``, ``/stats``, ``/healthz``, ``/metrics``), optionally
    hash-partitioned across in-process shards with scatter-gather
    merge.  Speaks the same versioned query-result wire schema as
    ``workspace query --format json`` (see ``docs/API.md``).
  - ``version`` (also ``--version``) — package version plus the
    on-disk workspace / index / feature-store format versions.
  - ``experiment <id>`` — run one of the table/figure reproductions and
    print the resulting table (optionally also write CSV).
  - ``distance <dataset> <i> <j>`` — compute the distance between two
    series of a registered data set under one or more constraints.
  - ``engine <dataset>`` — run a batch k-NN retrieval through the cascaded
    distance engine (served through an in-memory Workspace) and print the
    per-stage pruning / time breakdown.
  - ``stream`` — generate a synthetic stream with embedded pattern
    occurrences and monitor it online through the streaming subsystem
    (SPRING subsequence matching or cascaded sliding windows), reporting
    matches against ground truth plus per-pattern pruning statistics.
  - ``index build | query | stats`` — build a persistent salient-feature
    index over a data set, answer indexed k-NN queries through it
    (reporting recall against the exhaustive ranking), and inspect an
    index directory's manifest and shards.
  - ``datasets`` — list the registered data sets.

Error handling: every intentional library failure derives from
:class:`~repro.exceptions.ReproError` and is reported as a one-line
``error: ...`` message with exit code 2; operating-system failures
(unwritable output paths, missing files) exit 3 the same way.  Tracebacks
only escape for genuine bugs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.sdtw import SDTW
from .core.config import SDTWConfig
from .datasets.registry import available_datasets, load_dataset
from .exceptions import ExperimentError, ReproError


def _version_string() -> str:
    """Package version plus every on-disk format version a release pins."""
    from . import __version__
    from .analysis import CHECKER_SET_VERSION as checker_set
    from .indexing.store import FORMAT_VERSION as index_format
    from .retrieval.feature_store import STORE_FORMAT_VERSION as store_format
    from .service.workspace import FORMAT_VERSION as workspace_format

    return (
        f"repro-sdtw {__version__} "
        f"(workspace format v{workspace_format}, "
        f"index format v{index_format}, "
        f"feature-store format v{store_format}, "
        f"analysis checker set v{checker_set})"
    )


def _query_flags_parent(
    *,
    default_mode: str = "auto",
    default_k: Optional[int] = 5,
) -> argparse.ArgumentParser:
    """The query flags shared verbatim by ``serve``, ``workspace query``
    and ``engine``.

    One parent parser is the single spelling of ``--mode``/``--k``/
    ``--trace`` — same names, choices and help text everywhere, so the
    three front doors to the query contract cannot drift apart.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--mode", default=default_mode,
        choices=["auto", "exact", "indexed"],
        help="query mode: auto picks indexed when a fresh index exists, "
             "exact scans every stored series (default: %(default)s)")
    parent.add_argument(
        "--k", type=int, default=default_k,
        help="neighbours per query (default: "
             + ("the workspace's configured default"
                if default_k is None else "%(default)s") + ")")
    parent.add_argument(
        "--trace", action="store_true",
        help="attach the per-stage telemetry trace to each query")
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sdtw",
        description="sDTW reproduction (Candan et al., VLDB 2012): "
                    "experiments and distance computations.",
    )
    parser.add_argument("--version", action="version",
                        version=_version_string())
    subparsers = parser.add_subparsers(dest="command")

    exp = subparsers.add_parser("experiment", help="run a table/figure reproduction")
    exp.add_argument("experiment_id",
                     help="one of: table1, table2, fig13, fig14, fig15, fig16, "
                          "fig17, fig18")
    exp.add_argument("--num-series", type=int, default=None,
                     help="series sampled per data set (default: experiment-specific)")
    exp.add_argument("--seed", type=int, default=7, help="generation/sampling seed")
    exp.add_argument("--csv", metavar="PATH", default=None,
                     help="also write the rows to a CSV file")

    dist = subparsers.add_parser("distance",
                                 help="compute the distance between two series")
    dist.add_argument("dataset", help="registered data-set name or UCR file path")
    dist.add_argument("first", type=int, help="index of the first series")
    dist.add_argument("second", type=int, help="index of the second series")
    dist.add_argument("--constraint", action="append", default=None,
                      help="constraint label (repeatable); defaults to all")
    dist.add_argument("--seed", type=int, default=7, help="generation seed")

    eng = subparsers.add_parser(
        "engine",
        parents=[_query_flags_parent(default_mode="exact")],
        help="batch k-NN retrieval through the cascaded distance engine")
    eng.add_argument("dataset", help="registered data-set name or UCR file path")
    eng.add_argument("--constraint", default="fc,fw",
                     help="refinement constraint: full, fc,fw, itakura, "
                          "fc,aw, ac,fw, ac,aw, ac2,aw (default: fc,fw)")
    eng.add_argument("--backend", default="serial",
                     choices=["serial", "vectorized", "multiprocessing"],
                     help="execution backend (default: serial)")
    eng.add_argument("--workers", type=int, default=None,
                     help="worker processes for the multiprocessing backend")
    eng.add_argument("--num-queries", type=int, default=5,
                     help="how many stored series to replay as queries")
    eng.add_argument("--num-series", type=int, default=None,
                     help="subsample the collection to this many series")
    eng.add_argument("--no-cascade", action="store_true",
                     help="disable the LB_Kim/LB_Keogh pruning stages")
    eng.add_argument("--no-abandon", action="store_true",
                     help="disable early-abandoning refinement")
    eng.add_argument("--seed", type=int, default=7, help="generation/sampling seed")

    stream = subparsers.add_parser(
        "stream",
        help="online pattern monitoring over a synthetic stream")
    stream.add_argument("--length", type=int, default=4000,
                        help="stream length in samples (default: 4000)")
    stream.add_argument("--patterns", type=int, default=2,
                        help="number of registered query patterns (default: 2)")
    stream.add_argument("--pattern-length", type=int, default=96,
                        help="query pattern length (default: 96)")
    stream.add_argument("--occurrences", type=int, default=3,
                        help="embedded occurrences per pattern (default: 3)")
    stream.add_argument("--mode", default="sliding",
                        choices=["spring", "sliding"],
                        help="matching mode (default: sliding)")
    stream.add_argument("--constraint", default="fc,fw",
                        help="sliding-mode constraint: full, fc,fw, itakura, "
                             "fc,aw, ac,fw, ac,aw, ac2,aw (default: fc,fw)")
    stream.add_argument("--threshold", type=float, default=None,
                        help="match threshold (default: auto-calibrated from "
                             "the embedded occurrences)")
    stream.add_argument("--no-cascade", action="store_true",
                        help="disable the LB_Kim/LB_Keogh pruning stages")
    stream.add_argument("--no-abandon", action="store_true",
                        help="disable early-abandoning refinement")
    stream.add_argument("--seed", type=int, default=7, help="generation seed")

    index = subparsers.add_parser(
        "index",
        help="persistent salient-feature index (build / query / stats)")
    index_sub = index.add_subparsers(dest="index_command")

    build = index_sub.add_parser(
        "build", help="build and persist an index over a data set")
    build.add_argument("dataset", help="registered data-set name or UCR file path")
    build.add_argument("--output", required=True, metavar="DIR",
                       help="index directory to write")
    build.add_argument("--codewords", type=int, default=256,
                       help="codebook size (default: 256)")
    build.add_argument("--shards", type=int, default=4,
                       help="number of postings shards (default: 4)")
    build.add_argument("--num-series", type=int, default=None,
                       help="subsample the collection to this many series")
    build.add_argument("--seed", type=int, default=7,
                       help="generation/sampling seed")
    build.add_argument("--no-pq", action="store_true",
                       help="skip fitting the residual product quantizer "
                            "(disables rank-mode pq on this index)")
    build.add_argument("--pq-subquantizers", type=int, default=8,
                       help="PQ sub-quantizers / stored bytes per feature "
                            "(default: 8)")
    build.add_argument("--pq-bits", type=int, default=8,
                       help="bits per PQ code, sub-codebook size 2^bits "
                            "(default: 8)")

    query = index_sub.add_parser(
        "query", help="answer indexed k-NN queries against a persisted index")
    query.add_argument("index_dir", help="index directory written by 'index build'")
    query.add_argument("--k", type=int, default=10, help="neighbours per query")
    query.add_argument("--candidates", type=int, default=100,
                       help="candidate budget C per query (default: 100)")
    query.add_argument("--num-queries", type=int, default=5,
                       help="how many stored series to replay as queries")
    query.add_argument("--constraint", default="fc,fw",
                       help="re-ranking constraint: full, fc,fw, itakura, "
                            "fc,aw, ac,fw, ac,aw, ac2,aw (default: fc,fw)")
    query.add_argument("--rank-mode", default="tfidf",
                       choices=["tfidf", "pq"],
                       help="stage-1 candidate ranking (pq needs an index "
                            "built with PQ codes; default: tfidf)")
    query.add_argument("--exact", action="store_true",
                       help="bypass the index (full exhaustive scan)")
    query.add_argument("--no-mmap", action="store_true",
                       help="load shards fully into RAM instead of mmapping")
    query.add_argument("--no-recall", action="store_true",
                       help="skip the recall comparison against the "
                            "exhaustive ranking")

    stats = index_sub.add_parser(
        "stats", help="print an index directory's manifest and shard table")
    stats.add_argument("index_dir", help="index directory written by 'index build'")

    compact = index_sub.add_parser(
        "compact",
        help="fold an index's delta shards and tombstones into its base "
             "shards (bit-identical to a from-scratch postings rebuild)")
    compact.add_argument("index_dir", help="index directory written by 'index build'")
    compact.add_argument("--shards", type=int, default=None,
                         help="base shard count after compaction (default: "
                              "keep the current count)")

    workspace = subparsers.add_parser(
        "workspace",
        help="persistent Workspace service (init / add / query / stats)")
    ws_sub = workspace.add_subparsers(dest="workspace_command")

    ws_init = ws_sub.add_parser(
        "init", help="create a new workspace directory")
    ws_init.add_argument("workspace_dir", help="directory to create")
    ws_init.add_argument("--constraint", default="fc,fw",
                         help="engine constraint: full, fc,fw, itakura, "
                              "fc,aw, ac,fw, ac,aw, ac2,aw (default: fc,fw)")
    ws_init.add_argument("--backend", default="serial",
                         choices=["serial", "vectorized", "multiprocessing"],
                         help="execution backend (default: serial)")
    ws_init.add_argument("--codewords", type=int, default=256,
                         help="index codebook size (default: 256)")
    ws_init.add_argument("--shards", type=int, default=4,
                         help="index postings shards (default: 4)")
    ws_init.add_argument("--candidates", type=int, default=100,
                         help="indexed-query candidate budget (default: 100)")
    ws_init.add_argument("--micro-batch", action="store_true",
                         help="coalesce concurrent exact queries into engine "
                              "batches")
    ws_init.add_argument("--slow-query-threshold", type=float, default=None,
                         metavar="SECONDS",
                         help="persist the full trace of queries at least "
                              "this slow to slow_queries.jsonl (0 captures "
                              "every query; default: disabled)")

    ws_add = ws_sub.add_parser(
        "add", help="add a data set's series to a workspace")
    ws_add.add_argument("workspace_dir", help="workspace written by 'workspace init'")
    ws_add.add_argument("dataset", help="registered data-set name or UCR file path")
    ws_add.add_argument("--num-series", type=int, default=None,
                        help="subsample the data set to this many series")
    ws_add.add_argument("--seed", type=int, default=7,
                        help="generation/sampling seed")
    ws_add.add_argument("--build-index", action="store_true",
                        help="(re)build the inverted index after adding")

    ws_query = ws_sub.add_parser(
        "query", parents=[_query_flags_parent()],
        help="answer k-NN queries against a workspace")
    ws_query.add_argument("workspace_dir", help="workspace written by 'workspace init'")
    ws_query.add_argument("--candidates", type=int, default=None,
                          help="candidate budget override (indexed mode)")
    ws_query.add_argument("--rank-mode", default=None,
                          choices=["tfidf", "pq"],
                          help="stage-1 ranking override for indexed queries "
                               "(default: the workspace configuration)")
    ws_query.add_argument("--num-queries", type=int, default=5,
                          help="how many stored series to replay as queries")
    ws_query.add_argument("--format", default="table",
                          choices=["table", "json"], dest="output_format",
                          help="result format: a table, or one query-result "
                               "wire payload per line — exactly the schema "
                               "'repro serve' answers /query with (see "
                               "docs/API.md; default: table)")
    ws_query.add_argument("--profile", action="store_true",
                          help="sample this thread's stacks while the "
                               "queries run and print the hottest frames")

    ws_stats = ws_sub.add_parser(
        "stats", help="print a workspace's state summary (or its metrics)")
    ws_stats.add_argument("workspace_dir", help="workspace written by 'workspace init'")
    ws_stats.add_argument("--metrics", action="store_true",
                          help="export the telemetry metrics registry instead "
                               "of the state summary")
    ws_stats.add_argument("--format", default="json", choices=["json", "prom"],
                          help="metrics export format: structured JSON or "
                               "Prometheus text exposition (default: json)")
    ws_stats.add_argument("--probe", type=int, default=0, metavar="N",
                          help="replay up to N stored series as queries first "
                               "so latency histograms are populated "
                               "(default: 0)")

    ws_doctor = ws_sub.add_parser(
        "doctor",
        help="check workspace invariants (manifest, index accounting, PQ "
             "shapes, logs) and report OK / WARN / FAIL per check")
    ws_doctor.add_argument("workspace_dir",
                           help="workspace written by 'workspace init'")
    ws_doctor.add_argument("--no-probe", action="store_true",
                           help="skip the active probes (live query and "
                                "telemetry-overhead measurement)")
    ws_doctor.add_argument("--json", action="store_true",
                           help="emit the report as JSON instead of a table")

    ws_profile = ws_sub.add_parser(
        "profile",
        help="replay stored series as queries under the sampling profiler "
             "and print the hottest stacks")
    ws_profile.add_argument("workspace_dir",
                            help="workspace written by 'workspace init'")
    ws_profile.add_argument("--num-queries", type=int, default=5,
                            help="stored series replayed as queries "
                                 "(default: 5)")
    ws_profile.add_argument("--repeat", type=int, default=1,
                            help="replay passes over those queries "
                                 "(default: 1)")
    ws_profile.add_argument("--mode", default="auto",
                            choices=["auto", "exact", "indexed"],
                            help="query mode (default: auto)")
    ws_profile.add_argument("--interval", type=float, default=0.005,
                            metavar="SECONDS",
                            help="sampling interval (default: 0.005)")
    ws_profile.add_argument("--top", type=int, default=15,
                            help="hottest frames printed (default: 15)")
    ws_profile.add_argument("--output", metavar="PATH", default=None,
                            help="also write the collapsed stacks "
                                 "(flame-graph input) to this file")

    ws_flight = ws_sub.add_parser(
        "flight-record",
        help="dump the flight record (recent events, traces, slow queries, "
             "metrics, config) as one JSON blob")
    ws_flight.add_argument("workspace_dir",
                           help="workspace written by 'workspace init'")
    ws_flight.add_argument("--events", type=int, default=200,
                           help="recent events included (default: 200)")
    ws_flight.add_argument("--output", metavar="PATH", default=None,
                           help="write the record to this file instead of "
                                "stdout")

    serve = subparsers.add_parser(
        "serve",
        parents=[_query_flags_parent(default_k=None)],
        help="serve a workspace over HTTP/JSON (query / add / remove / "
             "stats / healthz / metrics)")
    serve.add_argument("workspace_dir",
                       help="workspace written by 'workspace init'")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: %(default)s)")
    serve.add_argument("--shards", type=int, default=1,
                       help="hash-partition the workspace across this many "
                            "in-process shards and answer queries by "
                            "scatter-gather merge; shard contents live in "
                            "memory, so /add and /remove do not persist to "
                            "the workspace directory (default: %(default)s)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="workspace calls executing concurrently "
                            "(default: %(default)s)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="requests allowed to wait for a worker before "
                            "new arrivals get 503 (default: %(default)s)")

    lint = subparsers.add_parser(
        "lint",
        help="run the zero-dependency static-analysis checkers "
             "(lock discipline, telemetry/null-object, float64 "
             "accumulation, pyflakes-subset hygiene)")
    lint.add_argument("paths", nargs="*", default=["."],
                      help="files or directories to check (default: .)")
    lint.add_argument("--select", action="append", default=None,
                      metavar="IDS",
                      help="comma-separated checker IDs or prefixes to "
                           "run (repeatable; e.g. RPR1 for the lock "
                           "family)")
    lint.add_argument("--ignore", action="append", default=None,
                      metavar="IDS",
                      help="comma-separated checker IDs or prefixes to "
                           "skip (repeatable)")
    lint.add_argument("--format", choices=["text", "json"],
                      default="text", dest="output_format",
                      help="report format (default: text)")
    lint.add_argument("--baseline", metavar="PATH", default=None,
                      help="reviewed baseline file; matching findings "
                           "do not gate")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write the current findings to --baseline "
                           "and exit 0")
    lint.add_argument("--doctor-map", action="store_true",
                      help="print which checkers have a runtime "
                           "'workspace doctor' counterpart and exit")

    subparsers.add_parser("datasets", help="list the registered data sets")
    subparsers.add_parser(
        "version",
        help="print the package version and on-disk format versions")
    return parser


def _run_experiment(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS

    key = args.experiment_id.lower()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(f"unknown experiment {key!r}; known: {known}")
    kwargs = {"seed": args.seed}
    if args.num_series is not None:
        kwargs["num_series"] = args.num_series
    result = EXPERIMENTS[key](**kwargs)
    print(result.to_text())
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(result.to_csv())
        print(f"CSV written to {args.csv}")
    return 0


def _run_distance(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed)
    constraints = args.constraint or [
        "full", "fc,fw", "fc,aw", "ac,fw", "ac,aw", "ac2,aw"
    ]
    for index in (args.first, args.second):
        if not 0 <= index < len(dataset):
            raise ExperimentError(
                f"series index {index} out of range for {dataset.name} "
                f"({len(dataset)} series)"
            )
    x = dataset[args.first].values
    y = dataset[args.second].values
    engine = SDTW(SDTWConfig())
    print(f"Data set {dataset.name}: series {args.first} vs {args.second} "
          f"(lengths {x.size} and {y.size})")
    for constraint in constraints:
        result = engine.distance(x, y, constraint=constraint)
        print(f"  {constraint:8s} distance={result.distance:10.4f} "
              f"cells={result.cells_filled:8d}/{result.total_cells:<8d} "
              f"savings={result.cell_savings:6.1%}")
    return 0


def _run_engine(args: argparse.Namespace) -> int:
    from .service import EngineConfig, Workspace, WorkspaceConfig
    from .utils.rng import rng_from_seed
    from .utils.tables import format_table

    dataset = load_dataset(args.dataset, seed=args.seed)
    if args.num_series is not None and args.num_series < len(dataset):
        rng = rng_from_seed(args.seed)
        dataset = dataset.sample(args.num_series, rng,
                                 name=f"{dataset.name}-n{args.num_series}")
    num_queries = max(1, min(args.num_queries, len(dataset)))

    # The batch retrieval path is served through an (in-memory) Workspace:
    # same cascade, one front door.
    workspace = Workspace(WorkspaceConfig(engine=EngineConfig(
        constraint=args.constraint,
        backend=args.backend,
        num_workers=args.workers,
        prune=not args.no_cascade,
        early_abandon=not args.no_abandon,
    )))
    identifiers = workspace.add_dataset(dataset)
    engine = workspace.engine

    if args.mode != "exact" or args.trace:
        # Non-default mode or tracing goes through the per-query
        # workspace path — the same contract 'workspace query' and
        # 'serve' answer with (indexed mode builds the index first).
        return _run_engine_per_query(args, workspace, dataset, num_queries)

    queries = [dataset[i].values for i in range(num_queries)]
    result = workspace.knn(queries, k=args.k,
                           exclude_identifiers=identifiers[:num_queries])
    stats = result.stats

    print(f"Batch k-NN over {dataset.name}: {len(dataset)} series, "
          f"{num_queries} queries, k={args.k}")
    print(f"constraint={engine.constraint} backend={engine.backend}"
          + (f" workers={args.workers}" if args.workers else ""))
    print()
    print(format_table(["stage", "count", "note"], stats.cascade_rows(),
                       title="Pruning cascade"))
    print()
    timing_rows = [
        ["lower bounds", stats.bound_seconds],
        ["feature extraction (a)", stats.extract_seconds],
        ["matching + pruning (b)", stats.matching_seconds],
        ["dynamic programming (c)", stats.dp_seconds],
        ["batch wall-clock", result.elapsed_seconds],
    ]
    print(format_table(["phase", "seconds"], timing_rows,
                       float_format=".6f", title="Time breakdown (Figure 17)"))
    print()
    correct = 0
    labelled = 0
    for qi, query_result in enumerate(result.results):
        top = query_result.hits[0] if query_result.hits else None
        label = dataset[qi].label
        if top is not None and label is not None:
            labelled += 1
            correct += int(top.label == label)
        if top is not None:
            print(f"query {qi}: nearest={top.identifier} "
                  f"distance={top.distance:.4f}")
    if labelled:
        print(f"top-1 label agreement: {correct}/{labelled}")
    return 0


def _run_engine_per_query(args, workspace, dataset, num_queries: int) -> int:
    from .utils.tables import format_table

    if args.mode in ("auto", "indexed"):
        workspace.build_index()
    identifiers = workspace.identifiers
    print(f"Per-query k-NN over {dataset.name}: {len(dataset)} series, "
          f"{num_queries} queries, mode={args.mode}, k={args.k}")
    rows = []
    traces = []
    for qi in range(num_queries):
        result = workspace.query(
            dataset[qi].values, args.k,
            mode=args.mode, exclude_identifier=identifiers[qi],
        )
        top = result.hits[0] if result.hits else None
        rows.append([
            identifiers[qi],
            result.mode if result.mode == "exact"
            else f"{result.mode} C={result.candidates_generated}",
            top.identifier if top else "-",
            round(top.distance, 4) if top else "-",
            f"{result.elapsed_seconds * 1000:.2f} ms",
        ])
        if args.trace:
            traces.append((identifiers[qi], result.trace))
    print(format_table(["query", "mode", "nearest", "distance", "time"],
                       rows, title=f"Top-1 of k={args.k}"))
    _print_traces(traces)
    return 0


def _run_stream(args) -> int:
    import time

    from .core.config import DescriptorConfig, SDTWConfig
    from .datasets.generators import embed_pattern_stream, make_stream_patterns
    from .streaming import StreamMonitor
    from .streaming.offline import calibrate_thresholds
    from .utils.rng import rng_from_seed
    from .utils.tables import format_table

    rng = rng_from_seed(args.seed)
    patterns = make_stream_patterns(args.patterns, args.pattern_length, rng)
    values, truth = embed_pattern_stream(
        args.length, patterns, rng, occurrences_per_pattern=args.occurrences
    )
    # Short descriptors keep adaptive-band construction CLI-friendly.
    config = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))
    if args.threshold is not None:
        thresholds = {index: args.threshold for index in range(len(patterns))}
    else:
        thresholds = calibrate_thresholds(
            values, patterns, truth, config,
            mode=args.mode, constraint=args.constraint,
        )

    monitor = StreamMonitor(
        config, prune=not args.no_cascade, early_abandon=not args.no_abandon
    )
    monitor.add_stream("stream", capacity=2 * args.pattern_length + 64)
    names = []
    for index, pattern in enumerate(patterns):
        names.append(monitor.add_pattern(
            pattern, name=f"pattern-{index}", threshold=thresholds[index],
            mode=args.mode, constraint=args.constraint,
        ))

    started = time.perf_counter()
    matches = monitor.extend("stream", values)
    matches += monitor.finalize("stream")
    elapsed = time.perf_counter() - started

    print(f"Monitored {args.length} samples for {len(patterns)} patterns "
          f"(mode={args.mode}"
          + (f", constraint={args.constraint}" if args.mode == "sliding" else "")
          + f", seed={args.seed})")
    throughput = args.length / elapsed if elapsed > 0 else float("inf")
    print(f"throughput: {throughput:,.0f} points/sec "
          f"({elapsed:.3f}s wall-clock)")
    print()

    detected = set()
    rows = []
    for match in sorted(matches, key=lambda m: m.start):
        hit = ""
        for ti, occ in enumerate(truth):
            if (occ.hit_by(match.start, match.end)
                    and f"pattern-{occ.pattern_index}" == match.pattern):
                hit = f"occurrence {ti}"
                detected.add(ti)
                break
        rows.append([match.pattern, match.start, match.end,
                     round(match.distance, 4), hit or "(background)"])
    if rows:
        print(format_table(["pattern", "start", "end", "distance", "ground truth"],
                           rows, title="Reported matches"))
    else:
        print("No matches reported.")
    print()
    print(f"detected {len(detected)}/{len(truth)} embedded occurrences")
    print()
    for index, name in enumerate(names):
        stats = monitor.stats(name)
        print(format_table(
            ["stage", "count", "note"], stats.rows(),
            title=f"{name} (threshold {thresholds[index]:.3f})"))
        print()
    return 0


def _run_index(args: argparse.Namespace) -> int:
    if args.index_command is None:
        print("error: 'index' needs a subcommand: build, query, compact or "
              "stats", file=sys.stderr)
        return 2
    if args.index_command == "build":
        return _run_index_build(args)
    if args.index_command == "query":
        return _run_index_query(args)
    if args.index_command == "compact":
        return _run_index_compact(args)
    return _run_index_stats(args)


def _run_index_build(args: argparse.Namespace) -> int:
    import time

    from .indexing import CodebookConfig, IndexedSearcher, PQConfig
    from .utils.rng import rng_from_seed

    dataset = load_dataset(args.dataset, seed=args.seed)
    if args.num_series is not None and args.num_series < len(dataset):
        rng = rng_from_seed(args.seed)
        dataset = dataset.sample(args.num_series, rng,
                                 name=f"{dataset.name}-n{args.num_series}")
    config = SDTWConfig()
    started = time.perf_counter()
    searcher = IndexedSearcher.from_dataset(
        dataset,
        config=config,
        codebook_config=CodebookConfig.for_sdtw(
            config, num_codewords=args.codewords, seed=args.seed,
        ),
        num_shards=args.shards,
        pq_config=None if args.no_pq else PQConfig(
            subquantizers=args.pq_subquantizers,
            bits=args.pq_bits,
            seed=args.seed,
        ),
    )
    manifest_path = searcher.save(args.output)
    elapsed = time.perf_counter() - started
    index = searcher.index
    print(f"Indexed {index.num_series} series of {dataset.name} in "
          f"{elapsed:.2f}s")
    print(f"codebook: {searcher.codebook.num_codewords} codewords; "
          f"postings: {index.num_postings} across {len(index.shards)} shards")
    if searcher.pq is not None:
        print(f"pq: {searcher.pq.code_bytes} bytes/feature over "
              f"{index.num_pq_postings} coded features "
              f"({searcher.pq.compression_ratio:.1f}x vs raw residuals)")
    print(f"manifest: {manifest_path}")
    return 0


def _run_index_query(args: argparse.Namespace) -> int:
    from .indexing import IndexReader, IndexedSearcher
    from .utils.tables import format_table

    reader = IndexReader.open(args.index_dir, mmap=not args.no_mmap)
    searcher = IndexedSearcher.from_reader(
        reader, constraint=args.constraint, candidate_budget=args.candidates,
        rank_mode=args.rank_mode,
    )
    num_queries = max(1, min(args.num_queries, len(searcher)))
    stored = searcher.engine.stored_items()[:num_queries]
    queries = [values for _, values, _ in stored]
    exclude = [identifier for identifier, _, _ in stored]

    print(f"Index at {args.index_dir}: {len(searcher)} series, "
          f"{searcher.index.num_postings} postings "
          f"({'mmap' if searcher.index.is_memory_mapped else 'in-memory'}), "
          f"constraint={args.constraint}")
    rows = []
    results = []
    indexed_seconds = 0.0
    for qi, values in enumerate(queries):
        result = searcher.query(
            values, args.k, exact=args.exact, exclude_identifier=exclude[qi],
        )
        results.append(result)
        indexed_seconds += result.elapsed_seconds
        top = result.hits[0] if result.hits else None
        rows.append([
            exclude[qi],
            "exact" if result.exact else f"C={result.candidates_generated}",
            top.identifier if top else "-",
            round(top.distance, 4) if top else "-",
            f"{result.elapsed_seconds * 1000:.2f} ms",
        ])
    print(format_table(["query", "mode", "nearest", "distance", "time"],
                       rows, title=f"Top-1 of k={args.k}"))
    if not args.exact and not args.no_recall:
        # Re-uses the indexed results above: only the exhaustive scans
        # are computed here.
        recalls = []
        exhaustive_seconds = 0.0
        for qi, values in enumerate(queries):
            exact = searcher.query(
                values, args.k, exact=True, exclude_identifier=exclude[qi],
            )
            exhaustive_seconds += exact.elapsed_seconds
            exact_top = set(exact.indices)
            overlap = len(exact_top & set(results[qi].indices))
            recalls.append(overlap / len(exact_top) if exact_top else 1.0)
        speedup = (
            exhaustive_seconds / indexed_seconds if indexed_seconds > 0
            else float("inf")
        )
        print()
        print(f"recall@{args.k} vs exhaustive: "
              f"{sum(recalls) / len(recalls):.3f} "
              f"(C={args.candidates}, "
              f"speedup {speedup:.1f}x over full scan)")
    return 0


def _run_index_stats(args: argparse.Namespace) -> int:
    from .indexing import IndexReader
    from .utils.tables import format_table

    reader = IndexReader.open(args.index_dir)
    manifest = reader.manifest
    index = reader.index
    print(f"Index at {args.index_dir}")
    print(f"format: {manifest['format']} v{manifest['version']}")
    print(f"series: {manifest['num_series']}  "
          f"codewords: {manifest['num_codewords']}  "
          f"postings: {manifest['num_postings']}  "
          f"descriptor bins: {manifest['descriptor_bins']}")
    print(f"live series: {index.num_live}  "
          f"delta shards: {index.num_delta_shards}  "
          f"tombstones: {index.num_tombstones}")
    if reader.pq is not None:
        print(f"pq: {reader.pq.code_bytes} bytes/feature over "
              f"{index.num_pq_postings} coded features "
              f"(compression {reader.pq.compression_ratio:.1f}x vs raw "
              f"residuals)")
    else:
        print("pq: none (TF-IDF candidate ranking only)")
    store = reader.store_path
    print(f"feature store: {store if store else '(none)'}")
    print()
    print(format_table(
        ["shard", "codeword range", "codewords", "postings", "size"],
        reader.stats_rows(), title="Shards"))
    return 0


def _run_index_compact(args: argparse.Namespace) -> int:
    import time

    from .indexing import IndexReader, IndexWriter

    reader = IndexReader.open(args.index_dir, mmap=False)
    index = reader.index
    deltas, tombstones = index.num_delta_shards, index.num_tombstones
    if not deltas and not tombstones:
        print(f"Index at {args.index_dir} has no delta shards or tombstones; "
              f"nothing to compact")
        return 0
    started = time.perf_counter()
    num_shards = args.shards if args.shards is not None else len(index.shards)
    compacted, slot_map = index.compact(num_shards=num_shards)
    live_identifiers = [
        identifier for slot, identifier in enumerate(reader.identifiers)
        if slot_map[slot] >= 0
    ]
    live_labels = [
        reader.labels[slot] for slot in range(len(reader.identifiers))
        if slot_map[slot] >= 0
    ]
    feature_store = None
    if reader.store_path is not None:
        feature_store = reader.load_feature_store(
            config=reader.extraction_config()
        )
    IndexWriter(args.index_dir).write(
        compacted,
        reader.codebook,
        live_identifiers,
        live_labels,
        feature_store=feature_store,
        extraction_config=reader.extraction_config(),
        pq=reader.pq,
    )
    elapsed = time.perf_counter() - started
    print(f"Compacted {deltas} delta shards and {tombstones} tombstones into "
          f"{len(compacted.shards)} base shards in {elapsed:.2f}s")
    print(f"postings: {compacted.num_postings} over {compacted.num_live} series")
    return 0


def _run_workspace(args: argparse.Namespace) -> int:
    if args.workspace_command is None:
        print("error: 'workspace' needs a subcommand: init, add, query, "
              "stats, doctor, profile or flight-record", file=sys.stderr)
        return 2
    if args.workspace_command == "init":
        return _run_workspace_init(args)
    if args.workspace_command == "add":
        return _run_workspace_add(args)
    if args.workspace_command == "query":
        return _run_workspace_query(args)
    if args.workspace_command == "doctor":
        return _run_workspace_doctor(args)
    if args.workspace_command == "profile":
        return _run_workspace_profile(args)
    if args.workspace_command == "flight-record":
        return _run_workspace_flight_record(args)
    return _run_workspace_stats(args)


def _run_workspace_init(args: argparse.Namespace) -> int:
    from .service import (
        EngineConfig, IndexConfig, ServingConfig, Workspace, WorkspaceConfig,
    )

    config = WorkspaceConfig(
        engine=EngineConfig(constraint=args.constraint, backend=args.backend),
        index=IndexConfig(
            num_codewords=args.codewords,
            num_shards=args.shards,
            candidate_budget=args.candidates,
        ),
        serving=ServingConfig(
            micro_batch=args.micro_batch,
            slow_query_threshold=args.slow_query_threshold,
        ),
    )
    workspace = Workspace.create(args.workspace_dir, config)
    print(f"Created workspace at {workspace.path}")
    print(f"constraint={args.constraint} backend={args.backend} "
          f"codewords={args.codewords} shards={args.shards} "
          f"micro_batch={args.micro_batch}")
    if args.slow_query_threshold is not None:
        print(f"slow-query capture: queries >= {args.slow_query_threshold}s "
              f"are persisted to slow_queries.jsonl")
    return 0


def _run_workspace_add(args: argparse.Namespace) -> int:
    import time

    from .service import Workspace
    from .utils.rng import rng_from_seed

    dataset = load_dataset(args.dataset, seed=args.seed)
    if args.num_series is not None and args.num_series < len(dataset):
        rng = rng_from_seed(args.seed)
        dataset = dataset.sample(args.num_series, rng,
                                 name=f"{dataset.name}-n{args.num_series}")
    started = time.perf_counter()
    with Workspace.open(args.workspace_dir) as workspace:
        identifiers = workspace.add_dataset(dataset)
        if args.build_index:
            workspace.build_index()
        size = len(workspace)
        has_index = workspace.has_index
    elapsed = time.perf_counter() - started
    print(f"Added {len(identifiers)} series of {dataset.name} in {elapsed:.2f}s "
          f"(workspace now holds {size})")
    print(f"index: {'built' if has_index else 'none (queries run exact scans)'}")
    return 0


def _run_workspace_query(args: argparse.Namespace) -> int:
    import json as json_module

    from .service import Workspace
    from .utils.tables import format_table

    from .exceptions import WorkspaceError

    with Workspace.open(args.workspace_dir) as workspace:
        if not len(workspace):
            raise WorkspaceError(
                "the workspace holds no series; run 'workspace add' first"
            )
        num_queries = max(1, min(args.num_queries, len(workspace)))
        replay = workspace.identifiers[:num_queries]
        rows = []
        traces = []
        profiler = None
        if args.profile:
            import threading

            from .telemetry import SamplingProfiler

            # Pin the sampler to this thread: the query loop below is
            # what the operator asked to attribute, not the whole
            # process.
            profiler = SamplingProfiler(
                threads=[threading.get_ident()]
            ).start()
        try:
            for identifier in replay:
                result = workspace.query(
                    workspace.series_of(identifier), args.k,
                    mode=args.mode, candidates=args.candidates,
                    exclude_identifier=identifier,
                    rank_mode=args.rank_mode,
                )
                if args.output_format == "json":
                    # One wire payload per line — byte-for-byte the
                    # schema 'repro serve' answers /query with.
                    print(json_module.dumps(
                        result.to_dict(include_trace=args.trace),
                        separators=(",", ":"),
                    ))
                    continue
                top = result.hits[0] if result.hits else None
                rows.append([
                    identifier,
                    result.mode if result.mode == "exact"
                    else f"{result.mode} C={result.candidates_generated}",
                    top.identifier if top else "-",
                    round(top.distance, 4) if top else "-",
                    f"{result.elapsed_seconds * 1000:.2f} ms",
                ])
                if args.trace:
                    traces.append((identifier, result.trace))
        finally:
            profile = profiler.stop() if profiler is not None else None
        if args.output_format != "json":
            print(f"Workspace at {args.workspace_dir}: {len(workspace)} "
                  f"series, mode={args.mode}, k={args.k}")
            print(format_table(
                ["query", "mode", "nearest", "distance", "time"],
                rows, title=f"Top-1 of k={args.k}"))
            _print_traces(traces)
        if profile is not None:
            print()
            _print_profile(profile, top=10)
    return 0


def _print_traces(traces) -> None:
    """Print (identifier, trace) pairs as per-stage tables."""
    from .utils.tables import format_table

    for identifier, trace in traces:
        print()
        if trace is None:
            print(f"trace of {identifier}: telemetry is disabled for "
                  f"this workspace")
            continue
        stage_rows = [
            [stage.name, f"{stage.seconds * 1000:.3f} ms",
             ", ".join(f"{key}={value}" for key, value
                       in sorted(stage.attributes.items()))]
            for stage in trace.stages
        ]
        print(format_table(
            ["stage", "time", "detail"], stage_rows,
            title=(f"Trace of {identifier} ({trace.mode}, "
                   f"{trace.total_seconds * 1000:.2f} ms)")))


def _print_profile(report, top: int) -> None:
    """Print a :class:`~repro.telemetry.ProfileReport` summary table."""
    from .utils.tables import format_table

    print(f"profiler: {report.num_samples} samples over "
          f"{report.duration_seconds:.2f}s "
          f"(interval {report.interval_seconds * 1000:.1f} ms, "
          f"sampler overhead {report.sampler_overhead:.1%})")
    if not report.num_samples:
        print("no samples captured (the window was shorter than the "
              "sampling interval)")
        return
    rows = [
        [frame, count, f"{count / report.num_samples:.1%}"]
        for frame, count in report.self_seconds()[: max(1, top)]
    ]
    print(format_table(["frame", "samples", "self"], rows,
                       title="Hottest frames (self time)"))


def _run_workspace_doctor(args: argparse.Namespace) -> int:
    import json as json_module

    from .service import Workspace, run_doctor
    from .utils.tables import format_table

    with Workspace.open(args.workspace_dir) as workspace:
        report = run_doctor(workspace, probe=not args.no_probe)
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(f"Doctor report for {args.workspace_dir}")
        print(format_table(["check", "status", "detail"], report.rows(),
                           title="Invariant checks"))
        counts = report.counts
        print(f"{counts['OK']} ok, {counts['WARN']} warnings, "
              f"{counts['FAIL']} failures -> "
              f"{'healthy' if report.healthy else 'UNHEALTHY'}")
        statics = report.static_checkers()
        if statics:
            pairs = "; ".join(f"{name}: {', '.join(ids)}"
                              for name, ids in statics.items())
            print(f"statically checked by 'repro lint' "
                  f"(docs/INVARIANTS.md): {pairs}")
    return 0 if report.healthy else 1


def _run_workspace_profile(args: argparse.Namespace) -> int:
    from .exceptions import WorkspaceError
    from .service import Workspace
    from .telemetry import SamplingProfiler

    with Workspace.open(args.workspace_dir) as workspace:
        if not len(workspace):
            raise WorkspaceError(
                "the workspace holds no series; run 'workspace add' first"
            )
        num_queries = max(1, min(args.num_queries, len(workspace)))
        replay = workspace.identifiers[:num_queries]
        executed = 0
        with SamplingProfiler(interval_seconds=args.interval) as profiler:
            for _ in range(max(1, args.repeat)):
                for identifier in replay:
                    workspace.query(
                        workspace.series_of(identifier),
                        mode=args.mode, exclude_identifier=identifier,
                    )
                    executed += 1
        report = profiler.stop()
    print(f"Profiled {executed} {args.mode} queries over "
          f"{num_queries} stored series at {args.workspace_dir}")
    _print_profile(report, top=args.top)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            collapsed = report.collapsed()
            handle.write(collapsed + ("\n" if collapsed else ""))
        print(f"collapsed stacks written to {args.output}")
    return 0


def _run_workspace_flight_record(args: argparse.Namespace) -> int:
    import json as json_module

    from .service import Workspace

    with Workspace.open(args.workspace_dir) as workspace:
        record = workspace.dump_flight_record(events=max(0, args.events))
    text = json_module.dumps(record, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"Flight record written to {args.output}")
    else:
        print(text)
    return 0


def _run_workspace_stats(args: argparse.Namespace) -> int:
    import json as json_module

    from .service import Workspace

    with Workspace.open(args.workspace_dir) as workspace:
        if args.metrics:
            # Optionally replay stored series as queries first so the
            # latency/cascade histograms have content to export.
            for identifier in workspace.identifiers[: max(0, args.probe)]:
                workspace.query(
                    workspace.series_of(identifier),
                    exclude_identifier=identifier,
                )
            if args.format == "prom":
                output = workspace.metrics_prometheus()
                print(output, end="" if output.endswith("\n") else "\n")
            else:
                print(json_module.dumps(workspace.metrics_to_dict(), indent=2))
            return 0
        summary = workspace.stats()
    print(f"Workspace at {args.workspace_dir}")
    print(f"series: {summary['num_series']}  "
          f"lengths: [{summary['min_length']}, {summary['max_length']}]")
    print(f"constraint: {summary['constraint']}  "
          f"backend: {summary['backend']}  "
          f"micro-batch: {summary['micro_batch']}  "
          f"telemetry: {'on' if summary['telemetry'] else 'off'}")
    index = summary["index"]
    if index is None:
        print("index: none (queries run exact scans)")
    else:
        state = "stale (rebuild with 'workspace add --build-index')" if (
            index["stale"]) else "fresh"
        print(f"index: {index['num_postings']} postings over "
              f"{index['num_codewords']} codewords ({state})")
        print(f"index slots: {index['num_live']} live of "
              f"{index['num_slots']}  delta shards: {index['delta_shards']}  "
              f"tombstones: {index['tombstones']}")
        ratio = index["pq_compression_ratio"]
        print(f"index rank mode: {index['rank_mode']}  pq compression: "
              f"{'none' if ratio is None else f'{ratio:.1f}x'}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from .server import WorkspaceServer, split_workspace
    from .service import Workspace

    workspace = Workspace.open(args.workspace_dir)
    try:
        target = workspace
        if args.shards > 1:
            target = split_workspace(workspace, args.shards)
            print(f"Partitioned {len(workspace)} series across "
                  f"{args.shards} in-process shards (scatter-gather "
                  f"merge; mutations stay in memory)")
        server = WorkspaceServer(
            target,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_pending=args.max_pending,
            default_mode=args.mode,
            default_k=args.k,
            default_trace=args.trace,
        )
        server.start()
        try:
            # start() has bound the socket, so the URL is live (and
            # accurate even with --port 0).
            print(f"Serving workspace {args.workspace_dir} on {server.url}")
            print("routes: POST /query /add /remove; GET /stats /healthz "
                  "/metrics  (Ctrl-C to stop)")
            while server.join(timeout=1.0):
                pass
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            server.stop()
        return 0
    finally:
        workspace.close()


def _run_datasets() -> int:
    for name in available_datasets():
        print(name)
    return 0


def _split_selectors(values: Optional[Sequence[str]]) -> Optional[list]:
    if values is None:
        return None
    selectors = [part.strip().upper()
                 for value in values
                 for part in value.split(",") if part.strip()]
    return selectors or None


def _run_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .analysis import (
        CHECKER_SET_VERSION,
        all_checkers,
        apply_baseline,
        check_paths,
        count_by_checker,
        doctor_counterparts,
        load_baseline,
        render_json,
        render_text,
        write_baseline,
    )
    from .exceptions import AnalysisError

    if args.doctor_map:
        counterparts = doctor_counterparts()
        print("checker  invariant                     "
              "runtime doctor check")
        for entry in all_checkers():
            runtime = entry.doctor_check or "-"
            print(f"{entry.id}   {entry.name:<29} {runtime}")
        print()
        print("doctor checks with static counterparts:")
        for name, ids in counterparts.items():
            print(f"  {name}: {', '.join(ids)}")
        return 0

    select = _split_selectors(args.select)
    ignore = _split_selectors(args.ignore)
    findings = check_paths(args.paths, select=select, ignore=ignore)

    if args.write_baseline:
        if args.baseline is None:
            raise AnalysisError("--write-baseline requires --baseline PATH")
        write_baseline(Path(args.baseline), findings)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    matched = 0
    stale = False
    unused = ()
    if args.baseline is not None:
        result = apply_baseline(findings,
                                load_baseline(Path(args.baseline)))
        findings = list(result.new)
        matched = result.matched
        stale = result.stale
        unused = result.unused

    if args.output_format == "json":
        extra = {
            "new": len(findings),
            "baselined": matched,
            "stale_baseline": stale,
            "unused_baseline_entries": [list(key) for key in unused],
        }
        print(json.dumps(render_json(findings,
                                     checker_set=CHECKER_SET_VERSION,
                                     extra=extra), indent=2))
    else:
        if findings:
            print(render_text(findings))
            counts = count_by_checker(findings)
            summary = ", ".join(f"{checker_id}: {count}"
                                for checker_id, count in counts.items())
            print(f"{len(findings)} finding(s) ({summary})")
        else:
            print("clean: no findings")
        if matched:
            print(f"{matched} finding(s) matched the baseline")
        for key in unused:
            print(f"warning: unused baseline entry: {key[0]} {key[1]}: "
                  f"{key[2]}")
        if stale:
            print("warning: baseline was written under a different "
                  "checker-set version "
                  f"(current: v{CHECKER_SET_VERSION}); re-review it "
                  "with --write-baseline")
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command is None:
        parser.print_help()
        return 1
    try:
        if args.command == "experiment":
            return _run_experiment(args)
        if args.command == "distance":
            return _run_distance(args)
        if args.command == "engine":
            return _run_engine(args)
        if args.command == "stream":
            return _run_stream(args)
        if args.command == "index":
            return _run_index(args)
        if args.command == "workspace":
            return _run_workspace(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "datasets":
            return _run_datasets()
        if args.command == "lint":
            return _run_lint(args)
        if args.command == "version":
            print(_version_string())
            return 0
    except ReproError as exc:
        # Every intentional library failure derives from ReproError; the
        # CLI contract is a clean one-line message, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Filesystem failures (unwritable output paths, missing files)
        # are environment errors, not bugs: same clean message, own code.
        print(f"error: {exc}", file=sys.stderr)
        return 3
    return 1


if __name__ == "__main__":
    sys.exit(main())
