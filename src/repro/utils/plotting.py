"""ASCII visualisation helpers.

The evaluation environment has no plotting backend, so these helpers render
time series, constraint bands, and warp paths as monospaced text.  They are
used by the examples and are handy when inspecting why a particular band
missed (or found) the optimal warp path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .._validation import as_series, check_int_at_least
from ..exceptions import ValidationError


def sparkline(
    series: Union[Sequence[float], np.ndarray],
    width: int = 60,
) -> str:
    """Render a series as a single-line sparkline using block characters."""
    values = as_series(series, "series")
    width = check_int_at_least(width, 1, "width")
    blocks = "▁▂▃▄▅▆▇█"
    resampled = np.interp(
        np.linspace(0, values.size - 1, width),
        np.arange(values.size),
        values,
    )
    lo, hi = resampled.min(), resampled.max()
    if hi - lo < 1e-12:
        return blocks[0] * width
    levels = ((resampled - lo) / (hi - lo) * (len(blocks) - 1)).astype(int)
    return "".join(blocks[level] for level in levels)


def ascii_series(
    series: Union[Sequence[float], np.ndarray],
    width: int = 70,
    height: int = 12,
    marker: str = "*",
) -> str:
    """Render a series as a multi-line ASCII chart.

    Parameters
    ----------
    series:
        The series to plot.
    width, height:
        Character dimensions of the chart area.
    marker:
        Character used for data points.
    """
    values = as_series(series, "series")
    width = check_int_at_least(width, 2, "width")
    height = check_int_at_least(height, 2, "height")
    if len(marker) != 1:
        raise ValidationError("marker must be a single character")
    resampled = np.interp(
        np.linspace(0, values.size - 1, width),
        np.arange(values.size),
        values,
    )
    lo, hi = resampled.min(), resampled.max()
    grid = [[" "] * width for _ in range(height)]
    span = hi - lo if hi - lo > 1e-12 else 1.0
    for column, value in enumerate(resampled):
        row = int(round((value - lo) / span * (height - 1)))
        grid[height - 1 - row][column] = marker
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"min={lo:.3g}  max={hi:.3g}  n={values.size}")
    return "\n".join(lines)


def render_band(
    band: np.ndarray,
    m: int,
    max_width: int = 70,
    max_height: int = 30,
    inside: str = "#",
    outside: str = ".",
) -> str:
    """Render a per-row window band as an ASCII occupancy grid.

    The grid is drawn with the first series on the vertical axis (top row =
    first element) and the second series on the horizontal axis, matching
    the orientation used throughout the library.  Large grids are
    down-sampled to at most ``max_width`` × ``max_height`` characters; a
    cell is drawn as *inside* if any covered grid cell maps onto it.
    """
    arr = np.asarray(band, dtype=int)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValidationError("band must have shape (n, 2)")
    n = arr.shape[0]
    rows = min(max_height, n)
    cols = min(max_width, m)
    lines: List[str] = []
    for r in range(rows):
        i = int(round(r * (n - 1) / max(rows - 1, 1)))
        lo, hi = arr[i]
        line = []
        for c in range(cols):
            j = int(round(c * (m - 1) / max(cols - 1, 1)))
            line.append(inside if lo <= j <= hi else outside)
        lines.append("".join(line))
    return "\n".join(lines)


def render_warp_path(
    path,
    n: Optional[int] = None,
    m: Optional[int] = None,
    max_width: int = 70,
    max_height: int = 30,
    on_path: str = "o",
    off_path: str = ".",
) -> str:
    """Render a warp path as an ASCII grid (down-sampled for large series)."""
    pairs = list(path)
    if not pairs:
        raise ValidationError("warp path is empty")
    n = n if n is not None else pairs[-1][0] + 1
    m = m if m is not None else pairs[-1][1] + 1
    rows = min(max_height, n)
    cols = min(max_width, m)
    grid = [[off_path] * cols for _ in range(rows)]
    for i, j in pairs:
        r = int(round(i * (rows - 1) / max(n - 1, 1)))
        c = int(round(j * (cols - 1) / max(m - 1, 1)))
        grid[r][c] = on_path
    return "\n".join("".join(row) for row in grid)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Place two multi-line ASCII blocks next to each other."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    height = max(len(left_lines), len(right_lines))
    left_width = max((len(line) for line in left_lines), default=0)
    spacer = " " * gap
    lines = []
    for row in range(height):
        l_part = left_lines[row] if row < len(left_lines) else ""
        r_part = right_lines[row] if row < len(right_lines) else ""
        lines.append(l_part.ljust(left_width) + spacer + r_part)
    return "\n".join(lines)
