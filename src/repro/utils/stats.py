"""Small statistics helpers used by the evaluation metrics and experiments."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from ..exceptions import ValidationError


def safe_divide(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Divide, returning *default* when the denominator is (near) zero."""
    if abs(denominator) < 1e-15:
        return default
    return numerator / denominator


def relative_error(estimate: float, reference: float) -> float:
    """Relative error ``(estimate - reference) / reference``.

    Matches the paper's distance-error definition, where the estimate comes
    from a constrained DTW and the reference is the optimal DTW distance.
    A zero reference with a zero estimate yields 0; a zero reference with a
    non-zero estimate yields ``inf``.
    """
    if reference == 0:
        return 0.0 if estimate == 0 else float("inf")
    return (estimate - reference) / reference


def pairwise_relative_error(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Mean relative error over parallel sequences of estimates/references.

    Pairs whose reference distance is zero (identical series) carry no
    information about constraint quality and are skipped; if every pair is
    skipped the error is 0.
    """
    estimates = list(estimates)
    references = list(references)
    if len(estimates) != len(references):
        raise ValidationError("estimates and references must have equal length")
    errors = [
        relative_error(e, r)
        for e, r in zip(estimates, references)
        if r != 0
    ]
    finite = [e for e in errors if np.isfinite(e)]
    if not finite:
        return 0.0
    return float(np.mean(finite))


def mean_and_std(values: Iterable[float]) -> Tuple[float, float]:
    """Mean and (population) standard deviation of an iterable of floats."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0, 0.0
    return float(arr.mean()), float(arr.std())


def percentile_summary(
    values: Iterable[float], percentiles: Sequence[float] = (5, 25, 50, 75, 95)
) -> Dict[str, float]:
    """Percentile summary of a collection of values (keys like ``"p50"``)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {f"p{int(p)}": float("nan") for p in percentiles}
    return {f"p{int(p)}": float(np.percentile(arr, p)) for p in percentiles}
