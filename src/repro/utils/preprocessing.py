"""Time-series preprocessing primitives.

The salient-feature extraction in :mod:`repro.core.scale_space` builds its
own Gaussian pyramid on top of :func:`gaussian_smooth`; the dataset
generators and examples use the normalisation and resampling helpers.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .._validation import as_series, check_int_at_least, check_positive


def gaussian_kernel(sigma: float, truncate: float = 4.0) -> np.ndarray:
    """Discrete, normalised 1-D Gaussian kernel with standard deviation *sigma*.

    The kernel is truncated at ``truncate * sigma`` samples on each side
    (matching the common scipy convention) and normalised to sum to one so
    smoothing preserves the series mean.
    """
    sigma = check_positive(sigma, "sigma")
    radius = max(1, int(truncate * sigma + 0.5))
    positions = np.arange(-radius, radius + 1, dtype=float)
    kernel = np.exp(-(positions ** 2) / (2.0 * sigma * sigma))
    return kernel / kernel.sum()


def gaussian_smooth(
    series: Union[Sequence[float], np.ndarray],
    sigma: float,
    truncate: float = 4.0,
) -> np.ndarray:
    """Convolve *series* with a Gaussian of standard deviation *sigma*.

    Edges are handled by reflecting the series, which avoids the spurious
    boundary extrema that zero padding would introduce into the
    difference-of-Gaussian analysis.
    """
    values = as_series(series, "series")
    kernel = gaussian_kernel(sigma, truncate)
    radius = (kernel.size - 1) // 2
    if radius == 0:
        return values.copy()
    pad = min(radius, values.size - 1) if values.size > 1 else 0
    if pad > 0:
        padded = np.concatenate([values[pad:0:-1], values, values[-2: -2 - pad: -1]])
        extra = radius - pad
        if extra > 0:
            padded = np.concatenate(
                [np.full(extra, padded[0]), padded, np.full(extra, padded[-1])]
            )
    else:
        padded = np.concatenate(
            [np.full(radius, values[0]), values, np.full(radius, values[-1])]
        )
    smoothed = np.convolve(padded, kernel, mode="valid")
    return smoothed[: values.size] if smoothed.size > values.size else smoothed


def moving_average(
    series: Union[Sequence[float], np.ndarray], window: int
) -> np.ndarray:
    """Centred moving average with edge shrinking (output has the same length)."""
    values = as_series(series, "series")
    window = check_int_at_least(window, 1, "window")
    half = window // 2
    out = np.empty_like(values)
    for i in range(values.size):
        lo = max(0, i - half)
        hi = min(values.size, i + half + 1)
        out[i] = values[lo:hi].mean()
    return out


def z_normalize(
    series: Union[Sequence[float], np.ndarray], epsilon: float = 1e-12
) -> np.ndarray:
    """Z-normalise a series to zero mean and unit variance.

    Constant series (variance below *epsilon*) are returned as all zeros
    instead of dividing by ~0.
    """
    values = as_series(series, "series")
    mean = values.mean()
    std = values.std()
    if std < epsilon:
        return np.zeros_like(values)
    return (values - mean) / std


def min_max_normalize(
    series: Union[Sequence[float], np.ndarray], epsilon: float = 1e-12
) -> np.ndarray:
    """Rescale a series to the [0, 1] range; constant series map to 0.5."""
    values = as_series(series, "series")
    lo = values.min()
    hi = values.max()
    if hi - lo < epsilon:
        return np.full_like(values, 0.5)
    return (values - lo) / (hi - lo)


def resample_linear(
    series: Union[Sequence[float], np.ndarray], length: int
) -> np.ndarray:
    """Resample a series to *length* points with linear interpolation."""
    values = as_series(series, "series")
    length = check_int_at_least(length, 1, "length")
    if values.size == 1:
        return np.full(length, values[0])
    old_positions = np.linspace(0.0, 1.0, values.size)
    new_positions = np.linspace(0.0, 1.0, length)
    return np.interp(new_positions, old_positions, values)


def downsample_by_two(series: Union[Sequence[float], np.ndarray]) -> np.ndarray:
    """Keep every second sample (the paper's octave downsampling rule)."""
    values = as_series(series, "series")
    return values[::2].copy()
