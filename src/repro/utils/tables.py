"""Plain-text table formatting for the experiment harness.

The experiment modules report their tables both as structured Python
objects (for programmatic use and tests) and as monospaced text tables
printed to stdout, mirroring the rows/series of the paper's tables and
figures.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def _render_cell(value: Cell, float_format: str) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    float_format: str = ".4f",
    title: str = None,
) -> str:
    """Render headers + rows as an aligned monospaced table string."""
    header_cells = [str(h) for h in headers]
    body = [[_render_cell(cell, float_format) for cell in row] for row in rows]
    widths = [len(h) for h in header_cells]
    for row in body:
        for idx, cell in enumerate(row):
            if idx >= len(widths):
                widths.append(len(cell))
            else:
                widths[idx] = max(widths[idx], len(cell))

    def render_row(cells: List[str]) -> str:
        padded = [cells[i].ljust(widths[i]) if i < len(cells) else " " * widths[i]
                  for i in range(len(widths))]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(header_cells))
    lines.append(separator)
    for row in body:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)


def table_to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    float_format: str = ".6f",
) -> str:
    """Render headers + rows as CSV text (comma separated, no quoting needed
    because the harness only emits simple identifiers and numbers)."""
    buffer = io.StringIO()
    buffer.write(",".join(str(h) for h in headers) + "\n")
    for row in rows:
        buffer.write(",".join(_render_cell(c, float_format) for c in row) + "\n")
    return buffer.getvalue()
