"""Deterministic random-number helpers.

All synthetic data generation in :mod:`repro.datasets` routes through these
helpers so experiments are reproducible run-to-run and seeds can be derived
hierarchically (dataset seed -> per-class seed -> per-series seed) without
correlation between streams.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np


def rng_from_seed(seed: Union[int, None, np.random.Generator]) -> np.random.Generator:
    """Return a numpy Generator from an int seed, None, or a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: Union[int, str]) -> int:
    """Derive a stable child seed from a base seed and a sequence of labels.

    The derivation hashes the base seed together with the labels, so the
    child streams are decorrelated and independent of iteration order.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") % (2 ** 63)
