"""Shared utilities: preprocessing, statistics, ASCII plotting, RNG helpers."""

from .plotting import ascii_series, render_band, render_warp_path, side_by_side, sparkline
from .preprocessing import (
    gaussian_kernel,
    gaussian_smooth,
    min_max_normalize,
    moving_average,
    resample_linear,
    z_normalize,
)
from .rng import derive_seed, rng_from_seed
from .stats import (
    mean_and_std,
    pairwise_relative_error,
    percentile_summary,
    relative_error,
    safe_divide,
)
from .tables import format_table, table_to_csv

__all__ = [
    "ascii_series",
    "derive_seed",
    "format_table",
    "gaussian_kernel",
    "gaussian_smooth",
    "mean_and_std",
    "min_max_normalize",
    "moving_average",
    "pairwise_relative_error",
    "percentile_summary",
    "relative_error",
    "render_band",
    "render_warp_path",
    "resample_linear",
    "rng_from_seed",
    "safe_divide",
    "side_by_side",
    "sparkline",
    "table_to_csv",
    "z_normalize",
]
