"""Inline suppression comments: ``# repro: noqa[ID1,ID2]``.

A finding is suppressed when the physical line it reports carries a
``# repro: noqa`` comment naming its checker ID (or a bare ``# repro:
noqa`` suppressing every checker on that line).  The project prefix
keeps these distinct from tool-generic ``# noqa`` comments, so adding
this linter never changes what ruff/flake8 would do and vice versa.

Comments are found with :mod:`tokenize` (not regex over raw lines) so
``#`` characters inside string literals can never be misread as
suppressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, List

from .findings import Finding

#: Marker meaning "every checker" (a bare ``# repro: noqa``).
ALL = "ALL"

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Z0-9_,\s]+)\])?",
    re.IGNORECASE,
)


def suppressed_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed checker IDs for *source*.

    Tokenisation errors are swallowed: a file that cannot be tokenised
    cannot be parsed either, so the driver reports it as a parse-error
    finding and suppression extraction is moot.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA.search(token.string)
        if match is None:
            continue
        ids = match.group("ids")
        if ids is None:
            selected = frozenset({ALL})
        else:
            selected = frozenset(
                part.strip().upper()
                for part in ids.split(",") if part.strip())
        line = token.start[0]
        suppressions[line] = suppressions.get(line, frozenset()) | selected
    return suppressions


def filter_findings(findings: Iterable[Finding],
                    suppressions: Dict[int, FrozenSet[str]],
                    ) -> List[Finding]:
    """Drop findings whose reported line suppresses their checker."""
    kept: List[Finding] = []
    for finding in findings:
        ids = suppressions.get(finding.line)
        if ids is not None and (ALL in ids or finding.checker in ids):
            continue
        kept.append(finding)
    return kept


__all__ = ["ALL", "suppressed_lines", "filter_findings"]
