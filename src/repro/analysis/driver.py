"""Per-file and per-tree analysis drivers.

:func:`check_source` runs every applicable checker over one parsed
module and applies inline suppressions; :func:`check_paths` walks
files and directories, normalises paths, and aggregates sorted
findings.  Unparsable files yield a single ``RPR000`` parse-error
finding rather than crashing the run — a gate that dies on bad input
protects nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from ..exceptions import AnalysisError
from .findings import Finding
from .registry import resolve_selection
from .suppressions import filter_findings, suppressed_lines

#: Checker ID reserved for files the compiler itself rejects.
PARSE_ERROR = "RPR000"

#: Directory names never descended into.  ``analysis_fixtures`` holds
#: the deliberately-violating test corpus: it must stay reachable when
#: named explicitly (the fixture tests do) but invisible to tree walks
#: so ``repro lint tests`` gates on real code only.
EXCLUDED_DIRS = frozenset({
    "__pycache__", ".git", ".hg", ".mypy_cache", ".pytest_cache",
    ".ruff_cache", ".venv", "venv", "build", "dist", ".eggs",
    "analysis_fixtures",
})


@dataclass(frozen=True)
class FileContext:
    """Everything a checker callable receives for one module."""

    path: str
    source: str
    tree: ast.Module

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


def _normalise(path: Path) -> str:
    return path.as_posix()


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under *paths* in sorted order.

    Files are yielded as given; directories are walked recursively,
    skipping :data:`EXCLUDED_DIRS`.  Missing paths raise
    :class:`AnalysisError` — a lint gate pointed at a typo must fail,
    not silently check nothing.
    """
    for path in paths:
        if not path.exists():
            raise AnalysisError(f"no such file or directory: {path}")
        if path.is_file():
            yield path
            continue
        stack = [path]
        collected: List[Path] = []
        while stack:
            current = stack.pop()
            for child in sorted(current.iterdir(), reverse=True):
                if child.is_dir():
                    if child.name not in EXCLUDED_DIRS:
                        stack.append(child)
                elif child.suffix == ".py":
                    collected.append(child)
        for collected_path in sorted(collected):
            yield collected_path


def check_source(source: str, path: str, *,
                 select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run the (selected) checkers over one module's source text."""
    checkers = resolve_selection(select, ignore)
    path = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        message = getattr(exc, "msg", None) or str(exc)
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 1
        if ignore and any(PARSE_ERROR.startswith(s) for s in ignore):
            return []
        return [Finding(path=path, line=line, col=col,
                        checker=PARSE_ERROR,
                        message=f"file does not parse: {message}")]
    context = FileContext(path=path, source=source, tree=tree)
    findings: List[Finding] = []
    for entry in checkers:
        if entry.id == PARSE_ERROR:
            continue
        if not entry.applies_to(path):
            continue
        findings.extend(entry.run(context))
    return filter_findings(sorted(findings), suppressed_lines(source))


def check_file(path: Path, *,
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> List[Finding]:
    """Check one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        return [Finding(path=_normalise(path), line=1, col=1,
                        checker=PARSE_ERROR,
                        message=f"file is not valid UTF-8: {exc.reason}")]
    return check_source(source, _normalise(path),
                        select=select, ignore=ignore)


def check_paths(paths: Sequence[str], *,
                select: Optional[Sequence[str]] = None,
                ignore: Optional[Sequence[str]] = None) -> List[Finding]:
    """Check every Python file under *paths*; findings sorted."""
    resolve_selection(select, ignore)  # fail fast on bad selectors
    findings: List[Finding] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        findings.extend(check_file(file_path, select=select, ignore=ignore))
    return sorted(findings)


__all__ = [
    "PARSE_ERROR",
    "EXCLUDED_DIRS",
    "FileContext",
    "iter_python_files",
    "check_source",
    "check_file",
    "check_paths",
]
