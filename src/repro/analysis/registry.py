"""Checker registry: declarative metadata plus the run callable.

Checkers self-register at import time via the :func:`checker`
decorator.  Each carries the metadata the rest of the suite needs —
the stable ID used in suppressions/baselines, a one-line contract, the
rationale behind the invariant, an example violation (both feed
``docs/INVARIANTS.md`` and ``repro lint --doctor-map``), an optional
path scope, and the name of the runtime ``workspace doctor`` check
that guards the same invariant dynamically (when one exists).

Path scoping: a checker with ``scope=(("repro", "service"),)`` only
runs on files whose path contains the consecutive segments
``repro/service``.  Matching on segment *subsequences* (rather than
absolute prefixes) lets the test fixture corpus mirror the scoped
layout under ``tests/analysis_fixtures/repro/service/...`` and hit the
same checkers the real tree does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import AnalysisError

#: Bump whenever a checker's semantics change enough that baseline
#: entries recorded under the previous behaviour may no longer match
#: (renamed IDs, reworded messages, new default scope).  ``repro
#: version`` reports it and baseline files record it, so a stale
#: baseline is detected instead of silently masking new findings.
CHECKER_SET_VERSION = 2


@dataclass(frozen=True)
class Checker:
    """One registered static check."""

    id: str
    name: str
    summary: str
    rationale: str
    example: str
    run: Callable
    scope: Tuple[Tuple[str, ...], ...] = ()
    doctor_check: Optional[str] = None

    def applies_to(self, path: str) -> bool:
        """True when *path* falls inside this checker's scope."""
        if not self.scope:
            return True
        segments = tuple(path.replace("\\", "/").split("/"))
        for needle in self.scope:
            for start in range(len(segments) - len(needle) + 1):
                if segments[start:start + len(needle)] == needle:
                    return True
        return False


_REGISTRY: Dict[str, Checker] = {}


def checker(id: str, name: str, summary: str, *, rationale: str,
            example: str, scope: Sequence[Sequence[str]] = (),
            doctor_check: Optional[str] = None) -> Callable:
    """Decorator registering *func* as the run callable of a checker."""

    def wrap(func: Callable) -> Callable:
        if id in _REGISTRY:
            raise AnalysisError(f"duplicate checker id {id!r}")
        _REGISTRY[id] = Checker(
            id=id,
            name=name,
            summary=summary,
            rationale=rationale,
            example=example,
            run=func,
            scope=tuple(tuple(part) for part in scope),
            doctor_check=doctor_check,
        )
        return func

    return wrap


def _ensure_loaded() -> None:
    from . import checkers  # noqa-free: registration side effect

    del checkers


def all_checkers() -> List[Checker]:
    """Every registered checker, sorted by ID."""
    _ensure_loaded()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def get_checker(checker_id: str) -> Checker:
    _ensure_loaded()
    try:
        return _REGISTRY[checker_id]
    except KeyError:
        raise AnalysisError(f"unknown checker id {checker_id!r}") from None


def resolve_selection(select: Optional[Sequence[str]],
                      ignore: Optional[Sequence[str]]) -> List[Checker]:
    """Apply ``--select`` / ``--ignore`` prefix selectors.

    A selector matches a checker when it equals the ID or is a prefix
    of it (``RPR1`` selects the whole lock-discipline family).  Unknown
    selectors raise :class:`AnalysisError` so typos fail loudly instead
    of silently disabling a gate.
    """
    checkers = all_checkers()

    def matches(selector: str, target: Checker) -> bool:
        return target.id == selector or target.id.startswith(selector)

    for selector in list(select or ()) + list(ignore or ()):
        if not any(matches(selector, c) for c in checkers):
            raise AnalysisError(
                f"selector {selector!r} matches no registered checker")
    if select:
        checkers = [c for c in checkers
                    if any(matches(s, c) for s in select)]
    if ignore:
        checkers = [c for c in checkers
                    if not any(matches(s, c) for s in ignore)]
    return checkers


def doctor_counterparts() -> Dict[str, Tuple[str, ...]]:
    """Map runtime doctor check name -> static checker IDs guarding
    the same invariant (the ``--doctor-map`` / doctor cross-link)."""
    mapping: Dict[str, List[str]] = {}
    for entry in all_checkers():
        if entry.doctor_check is not None:
            mapping.setdefault(entry.doctor_check, []).append(entry.id)
    return {name: tuple(ids) for name, ids in sorted(mapping.items())}


__all__ = [
    "CHECKER_SET_VERSION",
    "Checker",
    "checker",
    "all_checkers",
    "get_checker",
    "resolve_selection",
    "doctor_counterparts",
]
