"""Structured findings emitted by the static-analysis checkers.

A :class:`Finding` is one concrete violation: the checker that fired,
where (path / line / column), and a human-readable message.  Findings
sort by location so reports are stable regardless of checker order, and
serialise to plain dicts for the ``--format json`` CLI output and the
baseline file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass(frozen=True, order=True)
class Finding:
    """One static-analysis violation at a concrete source location."""

    path: str
    line: int
    col: int
    checker: str
    message: str

    def render(self) -> str:
        """One-line ``path:line:col: ID message`` report form."""
        return f"{self.path}:{self.line}:{self.col}: " \
               f"{self.checker} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def baseline_key(self) -> tuple:
        """Line-insensitive identity used for baseline matching.

        Line and column are deliberately excluded so unrelated edits
        above a baselined finding do not resurrect it.
        """
        return (self.checker, self.path, self.message)


def render_text(findings: Iterable[Finding]) -> str:
    """Sorted plain-text report, one finding per line."""
    return "\n".join(f.render() for f in sorted(findings))


def render_json(findings: Iterable[Finding], *,
                checker_set: int, extra: Dict[str, object] = None) -> Dict:
    """JSON-safe report document (the CLI dumps this with ``json``)."""
    document: Dict[str, object] = {
        "format": "repro-analysis-report",
        "checker_set": checker_set,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    if extra:
        document.update(extra)
    return document


def count_by_checker(findings: Iterable[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.checker] = counts.get(finding.checker, 0) + 1
    return dict(sorted(counts.items()))


__all__: List[str] = [
    "Finding",
    "render_text",
    "render_json",
    "count_by_checker",
]
