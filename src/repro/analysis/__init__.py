"""Zero-dependency static analysis for the repro codebase.

The concurrency and numerics contracts this stack depends on — lock
discipline around serving snapshots, immutability of structurally
shared objects, float64 accumulation in distance paths, null-object
telemetry — live in docstrings until something checks them.  This
package checks them: a checker registry over stdlib :mod:`ast` /
:mod:`tokenize` (nothing to install, so it gates CI even where ruff
cannot), structured findings, inline ``# repro: noqa[ID]``
suppressions, and a reviewed baseline file for grandfathered findings.

Entry points:

* ``repro lint [paths] [--select/--ignore] [--format text|json]
  [--baseline FILE]`` — the CLI driver; exits 1 on new findings.
* :func:`check_paths` / :func:`check_source` — the library API the
  test suite and CLI share.
* ``repro lint --doctor-map`` — which statically-checked invariants
  have a runtime ``workspace doctor`` counterpart.

See ``docs/INVARIANTS.md`` for the checker catalogue.
"""

from __future__ import annotations

from .baseline import (
    Baseline,
    BaselineResult,
    apply_baseline,
    empty_baseline_document,
    load_baseline,
    write_baseline,
)
from .driver import (
    EXCLUDED_DIRS,
    PARSE_ERROR,
    FileContext,
    check_file,
    check_paths,
    check_source,
    iter_python_files,
)
from .findings import Finding, count_by_checker, render_json, render_text
from .registry import (
    CHECKER_SET_VERSION,
    Checker,
    all_checkers,
    doctor_counterparts,
    get_checker,
    resolve_selection,
)

__all__ = [
    "Baseline",
    "BaselineResult",
    "CHECKER_SET_VERSION",
    "Checker",
    "EXCLUDED_DIRS",
    "FileContext",
    "Finding",
    "PARSE_ERROR",
    "all_checkers",
    "apply_baseline",
    "check_file",
    "check_paths",
    "check_source",
    "count_by_checker",
    "doctor_counterparts",
    "empty_baseline_document",
    "get_checker",
    "iter_python_files",
    "load_baseline",
    "render_json",
    "render_text",
    "resolve_selection",
    "write_baseline",
]
