"""Checker implementations.

Importing this package registers every checker with
:mod:`repro.analysis.registry` (the modules register at import time
via the :func:`~repro.analysis.registry.checker` decorator).
"""

from __future__ import annotations

from . import conventions, locking

__all__ = ["conventions", "locking"]
