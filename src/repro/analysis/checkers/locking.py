"""Lock-discipline race detector (RPR101-RPR103).

These checkers encode the concurrency contract the service layer has
relied on since PR 4: mutable ``Workspace`` state is written under
``self._lock`` (or a sibling lock), serving snapshots and prepared
segments are immutable once published, and a new snapshot is published
with a single atomic reference assignment.  The analysis is lexical —
it cannot prove the absence of races — but it catches the mistakes
that actually happen when new mutation paths are added: a write to a
lock-guarded attribute outside any ``with self._lock`` block, or an
in-place mutation of an object that lock-free readers may already
hold.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..registry import checker

#: Methods allowed to write anything: the object is not yet shared.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})

#: Docstring convention marking a method whose caller acquires the
#: lock before invoking it (established by ``Workspace._index_add``
#: and friends in PR 5).
_CALLER_HOLDS = re.compile(r"caller\s+holds\s+.{0,40}lock", re.IGNORECASE)

#: Classes whose instances are shared structurally across serving
#: snapshots and read without a lock.  Post-construction writes to
#: them are races by definition; the per-class allowlist names the
#: deliberately mutable fields (documented cache / accounting state
#: whose consistency the owning class guards by other means).
IMMUTABLE_CLASSES: Dict[str, FrozenSet[str]] = {
    # Shared prepared-segment payloads (engine): frozen dataclass, but
    # the freeze only guards attribute *rebinding* at runtime — this
    # catches object.__setattr__ workarounds and mutable-field writes
    # before they run.
    "_PreparedSegment": frozenset(),
    # Published serving snapshots (service.workspace).
    "_Snapshot": frozenset(),
    # Copy-on-write persisted-index holder: ``stale`` is the one
    # sanctioned in-place flag, flipped under the workspace lock.
    "_PersistedIndex": frozenset({"stale"}),
    # Index shards: payload arrays are immutable by contract; the
    # postings-page cache fields are per-shard mutable state by design.
    "IndexShard": frozenset({
        "_postings_cache",
        "_postings_cache_capacity",
        "postings_cache_hits",
        "postings_cache_misses",
    }),
}

#: ``self.<attr>`` references that lock-free readers follow: objects
#: reached through them are published and must not be mutated in
#: place.
_PUBLISHED_REFS = frozenset({"_serving", "_previous"})

_LOCK_SCOPE = (("repro", "service"), ("repro", "engine"),
               ("repro", "indexing"), ("repro", "server"))


def _self_attr(node: ast.AST) -> Optional[str]:
    """Attribute name when *node* is ``self.<attr>``, else ``None``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _write_targets(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Yield the target expressions a statement writes through."""
    if isinstance(stmt, ast.Assign):
        yield from stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if not (isinstance(stmt, ast.AnnAssign) and stmt.value is None):
            yield stmt.target
    elif isinstance(stmt, ast.Delete):
        yield from stmt.targets


def _flatten_target(target: ast.expr) -> Iterator[ast.expr]:
    """Expand tuple/list unpacking targets into leaf expressions."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_target(element)
    else:
        yield target


def _written_self_attr(target: ast.expr) -> Optional[Tuple[str, bool]]:
    """``(attr, is_rebind)`` when *target* writes ``self.<attr>``.

    ``is_rebind`` is True for ``self.x = ...`` (reference swap) and
    False for ``self.x[i] = ...`` (in-place element write) — both are
    writes for lock purposes.
    """
    attr = _self_attr(target)
    if attr is not None:
        return attr, True
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            return attr, False
    return None


def _methods(class_node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for stmt in class_node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _is_instance_method(func: ast.FunctionDef) -> bool:
    args = func.args.posonlyargs + func.args.args
    return bool(args) and args[0].arg == "self"


def _lock_attrs(class_node: ast.ClassDef) -> Set[str]:
    """Attribute names holding locks in this class.

    An attribute is a lock when ``__init__`` assigns it from a
    ``Lock()`` / ``RLock()`` call, or when any method uses it as a
    ``with self.<attr>`` context and the name mentions "lock".
    """
    locks: Set[str] = set()
    for method in _methods(class_node):
        if method.name in _CONSTRUCTORS:
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign) \
                        or not isinstance(stmt.value, ast.Call):
                    continue
                func = stmt.value.func
                name = func.attr if isinstance(func, ast.Attribute) \
                    else getattr(func, "id", None)
                if name not in ("Lock", "RLock"):
                    continue
                for target in stmt.targets:
                    for leaf in _flatten_target(target):
                        attr = _self_attr(leaf)
                        if attr is not None:
                            locks.add(attr)
        for stmt in ast.walk(method):
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and "lock" in attr.lower():
                        locks.add(attr)
    return locks


@dataclass(frozen=True)
class _Write:
    attr: str
    node: ast.expr
    held: FrozenSet[str]
    method: str
    in_constructor: bool
    caller_holds: bool


def _child_blocks(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    """Statement blocks nested directly inside *stmt* (if/for/try/...)."""
    for field in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field, None)
        if isinstance(block, list) and block \
                and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(stmt, "handlers", None) or ():
        yield handler.body
    for case in getattr(stmt, "cases", None) or ():
        yield case.body


def _scan_method(method: ast.FunctionDef,
                 lock_names: Set[str]) -> List[_Write]:
    """Collect ``self.<attr>`` writes with the lexically-held locks."""
    caller_holds = bool(_CALLER_HOLDS.search(ast.get_docstring(method)
                                             or ""))
    in_constructor = method.name in _CONSTRUCTORS
    writes: List[_Write] = []

    def visit(stmts: List[ast.stmt], held: FrozenSet[str]) -> None:
        for stmt in stmts:
            for target in _write_targets(stmt):
                for leaf in _flatten_target(target):
                    written = _written_self_attr(leaf)
                    if written is None:
                        continue
                    writes.append(_Write(
                        attr=written[0], node=leaf, held=held,
                        method=method.name,
                        in_constructor=in_constructor,
                        caller_holds=caller_holds))
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = {
                    attr for item in stmt.items
                    for attr in [_self_attr(item.context_expr)]
                    if attr is not None and attr in lock_names}
                visit(stmt.body, held | frozenset(acquired))
            elif isinstance(stmt, (ast.FunctionDef,
                                   ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scope: lock context is not lexical
            else:
                for block in _child_blocks(stmt):
                    visit(block, held)
    visit(method.body, frozenset())
    return writes


@checker(
    "RPR101",
    "unguarded-write",
    "Writes to lock-guarded attributes must hold the guarding lock.",
    rationale=(
        "Workspace serves lock-free readers from published snapshots; "
        "every mutable attribute that is ever written under "
        "``with self._lock`` is part of the writer-side critical "
        "state.  A write to the same attribute outside the lock races "
        "with concurrent mutators and with snapshot derivation."),
    example="self._serving = snapshot  # outside 'with self._lock'",
    scope=_LOCK_SCOPE,
    doctor_check="serving_snapshot",
)
def check_unguarded_writes(context) -> List[Finding]:
    findings: List[Finding] = []
    for class_node in ast.walk(context.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        lock_names = _lock_attrs(class_node)
        if not lock_names:
            continue
        writes: List[_Write] = []
        for method in _methods(class_node):
            if not _is_instance_method(method):
                continue
            writes.extend(_scan_method(method, lock_names))
        guarded: Dict[str, Set[str]] = {}
        for write in writes:
            if write.held:
                guarded.setdefault(write.attr, set()).update(write.held)
        for write in writes:
            if write.attr not in guarded or write.in_constructor \
                    or write.caller_holds:
                continue
            if write.held & guarded[write.attr]:
                continue
            locks = ", ".join(sorted(guarded[write.attr]))
            findings.append(Finding(
                path=context.path, line=write.node.lineno,
                col=write.node.col_offset + 1, checker="RPR101",
                message=(
                    f"write to '{class_node.name}.{write.attr}' in "
                    f"'{write.method}' without holding '{locks}' — "
                    f"the attribute is lock-guarded elsewhere in the "
                    f"class; wrap the write in 'with self.{locks}' or "
                    f"document \"caller holds the lock\" in the "
                    f"docstring"),
            ))
    return findings


def _constructed_class(value: ast.expr) -> Optional[str]:
    """Class name when *value* calls a declared-immutable class."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name in IMMUTABLE_CLASSES else None


def _function_scopes(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@checker(
    "RPR102",
    "immutable-violation",
    "Declared-immutable classes must not be written after __init__.",
    rationale=(
        "Prepared segments, serving snapshots and index shards are "
        "shared structurally between snapshot generations and read "
        "by concurrent queries without a lock.  Mutating one in place "
        "changes history under a reader's feet; the contract is to "
        "build a replacement instance instead."),
    example="segment.matrix = new_matrix  # _PreparedSegment is shared",
    scope=_LOCK_SCOPE,
    doctor_check="serving_snapshot",
)
def check_immutable_violations(context) -> List[Finding]:
    findings: List[Finding] = []

    def flag(node: ast.expr, class_name: str, attr: str) -> None:
        findings.append(Finding(
            path=context.path, line=node.lineno,
            col=node.col_offset + 1, checker="RPR102",
            message=(
                f"post-__init__ write to declared-immutable "
                f"'{class_name}.{attr}' — instances are shared across "
                f"serving snapshots; build a new instance instead of "
                f"mutating"),
        ))

    # Rule 1: writes to ``self.<attr>`` inside the class itself.
    for class_node in ast.walk(context.tree):
        if not isinstance(class_node, ast.ClassDef) \
                or class_node.name not in IMMUTABLE_CLASSES:
            continue
        allowed = IMMUTABLE_CLASSES[class_node.name]
        for method in _methods(class_node):
            if method.name in _CONSTRUCTORS \
                    or not _is_instance_method(method):
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.stmt):
                    continue
                for target in _write_targets(stmt):
                    for leaf in _flatten_target(target):
                        written = _written_self_attr(leaf)
                        if written and written[0] not in allowed:
                            flag(leaf, class_node.name, written[0])

    # Rule 2: local-variable inference — ``seg = _PreparedSegment(...)``
    # followed by ``seg.attr = ...`` anywhere in the same function.
    for func in _function_scopes(context.tree):
        owner: Dict[str, str] = {}
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                class_name = _constructed_class(stmt.value)
                if class_name is not None:
                    owner[stmt.targets[0].id] = class_name
        if not owner:
            continue
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.stmt):
                continue
            for target in _write_targets(stmt):
                for leaf in _flatten_target(target):
                    if isinstance(leaf, ast.Attribute) \
                            and isinstance(leaf.value, ast.Name) \
                            and leaf.value.id in owner:
                        class_name = owner[leaf.value.id]
                        if leaf.attr not in IMMUTABLE_CLASSES[class_name]:
                            flag(leaf, class_name, leaf.attr)
    return findings


@checker(
    "RPR103",
    "snapshot-mutation",
    "Published serving snapshots are swapped atomically, never edited.",
    rationale=(
        "Readers pick up ``self._serving`` without a lock; the only "
        "legal publish is a single reference assignment of a fully "
        "assembled snapshot.  Field-by-field writes through "
        "``self._serving`` / ``self._previous`` (multi-statement "
        "publish) expose half-updated state to concurrent queries."),
    example="self._serving.engine = new_engine  # in-place publish",
    scope=(("repro", "service"), ("repro", "server")),
    doctor_check="serving_snapshot",
)
def check_snapshot_mutation(context) -> List[Finding]:
    findings: List[Finding] = []

    def flag(node: ast.expr, ref: str, attr: str) -> None:
        findings.append(Finding(
            path=context.path, line=node.lineno,
            col=node.col_offset + 1, checker="RPR103",
            message=(
                f"in-place write to published snapshot "
                f"'self.{ref}.{attr}' — assemble a new snapshot and "
                f"publish it with one atomic assignment"),
        ))

    def published_ref(expr: ast.expr) -> Optional[str]:
        attr = _self_attr(expr)
        if attr in _PUBLISHED_REFS:
            return attr
        return None

    for func in _function_scopes(context.tree):
        aliases: Dict[str, str] = {}
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                ref = published_ref(stmt.value)
                name = stmt.targets[0].id
                if ref is not None:
                    aliases[name] = ref
                else:
                    aliases.pop(name, None)
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.stmt):
                continue
            for target in _write_targets(stmt):
                for leaf in _flatten_target(target):
                    base = leaf
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    if not isinstance(base, ast.Attribute):
                        continue
                    ref = published_ref(base.value)
                    if ref is not None:
                        flag(leaf, ref, base.attr)
                        continue
                    if isinstance(base.value, ast.Name) \
                            and base.value.id in aliases:
                        flag(leaf, aliases[base.value.id], base.attr)
    return findings


__all__ = [
    "IMMUTABLE_CLASSES",
    "check_unguarded_writes",
    "check_immutable_violations",
    "check_snapshot_mutation",
]
