"""Convention checkers (RPR201-RPR208).

Each encodes an invariant an earlier PR established in code review and
docstrings; see ``docs/INVARIANTS.md`` for the catalogue.  The last
four (mutable defaults, placeholder-less f-strings, unused imports,
unused locals) are the pyflakes subset that lets ``repro lint`` gate
correctness hygiene even in environments where ruff cannot install.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..findings import Finding
from ..registry import checker

# ---------------------------------------------------------------------------
# RPR201: time.time() in library code
# ---------------------------------------------------------------------------


@checker(
    "RPR201",
    "wall-clock-timing",
    "Intervals are measured with perf_counter, never time.time().",
    rationale=(
        "time.time() follows wall-clock adjustments (NTP slew, DST), "
        "so latencies measured with it can be negative or wildly "
        "wrong — the telemetry histograms and perf guards depend on "
        "monotonic timing.  Genuine wall-clock timestamps are rare "
        "and must be marked with '# repro: noqa[RPR201]'."),
    example="started = time.time()  # use time.perf_counter()",
)
def check_wall_clock_timing(context) -> List[Finding]:
    module_aliases: Set[str] = set()
    function_aliases: Set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    module_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        function_aliases.add(alias.asname or "time")
    if not module_aliases and not function_aliases:
        return []
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        hit = (
            isinstance(func, ast.Attribute) and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id in module_aliases
        ) or (
            isinstance(func, ast.Name) and func.id in function_aliases
        )
        if hit:
            findings.append(Finding(
                path=context.path, line=node.lineno,
                col=node.col_offset + 1, checker="RPR201",
                message=(
                    "time.time() call — use time.perf_counter() for "
                    "intervals; a genuine wall-clock timestamp needs "
                    "'# repro: noqa[RPR201]'"),
            ))
    return findings


# ---------------------------------------------------------------------------
# RPR202: float32 accumulation in distance paths
# ---------------------------------------------------------------------------

#: Call names that create or reduce into an accumulator.
_ACCUMULATOR_FUNCS = frozenset({
    "zeros", "empty", "ones", "full",
    "zeros_like", "empty_like", "ones_like", "full_like",
    "sum", "cumsum", "prod", "mean", "dot", "vdot", "einsum",
    "matmul", "add", "reduce", "accumulate",
})

#: Paths where any float32 is a violation (the exact-DTW compute core).
_COMPUTE_SCOPE = (("repro", "dtw"), ("repro", "engine"),
                  ("repro", "core"))


def _is_float32(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return node.value == "float32"
    if isinstance(node, ast.Name):
        return node.id == "float32"
    if isinstance(node, ast.Attribute):
        return node.attr == "float32"
    return False


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@checker(
    "RPR202",
    "float32-accumulation",
    "DTW / ADC distances accumulate in float64; float32 is storage-only.",
    rationale=(
        "The engine's pruning cascade is admissible only because "
        "lower bounds and refinements are computed in float64 — "
        "float32 rounding can reorder neighbours and break the "
        "bit-identical equivalence suites.  float32 is reserved for "
        "on-disk payloads (index weights, PQ residuals) and must be "
        "cast at the storage boundary, never accumulated into."),
    example="scores = np.zeros(n, dtype=np.float32)  # accumulator",
    scope=_COMPUTE_SCOPE + (("repro", "indexing"),),
    doctor_check="query_probe",
)
def check_float32_accumulation(context) -> List[Finding]:
    segments = tuple(context.path.split("/"))
    compute = any(
        segments[i:i + len(seq)] == seq
        for seq in _COMPUTE_SCOPE
        for i in range(len(segments) - len(seq) + 1))
    findings: List[Finding] = []

    def flag(node: ast.AST, what: str) -> None:
        if compute:
            message = (f"float32 {what} in the exact-distance compute "
                       f"core — accumulate and compare in float64")
        else:
            message = (f"float32 {what} — accumulate in float64 and "
                       f"cast once at the storage boundary")
        findings.append(Finding(
            path=context.path, line=node.lineno,
            col=node.col_offset + 1, checker="RPR202",
            message=message))

    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        dtype_kw = next((kw.value for kw in node.keywords
                         if kw.arg == "dtype"), None)
        if dtype_kw is not None and _is_float32(dtype_kw):
            if compute:
                flag(dtype_kw, f"dtype in '{name}(...)'")
            elif name in _ACCUMULATOR_FUNCS:
                flag(dtype_kw, f"accumulator dtype in '{name}(...)'")
        if compute and name == "astype" \
                and any(_is_float32(arg) for arg in node.args):
            flag(node, "cast via '.astype(float32)'")
    return findings


# ---------------------------------------------------------------------------
# RPR203: bare WorkspaceError in the service layer
# ---------------------------------------------------------------------------


@checker(
    "RPR203",
    "bare-workspace-error",
    "Instance code raises via Workspace._error(), never bare "
    "WorkspaceError.",
    rationale=(
        "Workspace._error() attaches the flight record (recent "
        "events, traces, metrics, config) to every error leaving a "
        "live workspace.  A bare 'raise WorkspaceError(...)' from "
        "instance code ships a blind error — the one diagnostics "
        "bundle an operator needs is exactly what gets dropped.  "
        "Classmethod constructors (create/open) run before a "
        "workspace exists and are exempt."),
    example="raise WorkspaceError('closed')  # use self._error('closed')",
    scope=(("repro", "service"),),
    doctor_check="event_log",
)
def check_bare_workspace_error(context) -> List[Finding]:
    findings: List[Finding] = []
    for class_node in ast.walk(context.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            args = method.args.posonlyargs + method.args.args
            if not args or args[0].arg != "self":
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                if isinstance(exc, ast.Name) \
                        and exc.id == "WorkspaceError":
                    findings.append(Finding(
                        path=context.path, line=node.lineno,
                        col=node.col_offset + 1, checker="RPR203",
                        message=(
                            "bare 'raise WorkspaceError' in instance "
                            "code — raise self._error(...) so the "
                            "flight record attaches"),
                    ))
    return findings


# ---------------------------------------------------------------------------
# RPR204: truthiness branches on telemetry objects
# ---------------------------------------------------------------------------

_TELEMETRY_NAMES = frozenset({"telemetry"})
_TELEMETRY_ATTRS = frozenset({"_metrics", "_events", "_telemetry"})


def _truthiness_atoms(test: ast.expr) -> Iterator[ast.expr]:
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        yield from _truthiness_atoms(test.operand)
    elif isinstance(test, ast.BoolOp):
        for value in test.values:
            yield from _truthiness_atoms(value)
    else:
        yield test


@checker(
    "RPR204",
    "telemetry-branch",
    "Instrumented paths never branch on telemetry truthiness "
    "(null-object pattern).",
    rationale=(
        "Telemetry is wired as null objects (NULL_REGISTRY, "
        "NULL_EVENT_LOG) precisely so hot paths stay branch-free and "
        "the disabled configuration exercises the same code CI "
        "measures.  'if telemetry:' / 'if self._metrics:' branches "
        "reintroduce a second untested path and skew the <=5% "
        "overhead guard.  Single construction-time decisions gate on "
        "'.enabled' or compare 'is None'."),
    example="if self._metrics: self._metrics.inc()  # just call it",
    scope=(("repro",),),
    doctor_check="telemetry_overhead",
)
def check_telemetry_branch(context) -> List[Finding]:
    if "repro/telemetry/" in context.path or \
            context.path.endswith("repro/telemetry"):
        return []  # the null-object implementation itself
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.If, ast.IfExp, ast.While)):
            tests = [node.test]
        else:
            continue
        for test in tests:
            for atom in _truthiness_atoms(test):
                hit = (
                    isinstance(atom, ast.Name)
                    and atom.id in _TELEMETRY_NAMES
                ) or (
                    isinstance(atom, ast.Attribute)
                    and atom.attr in _TELEMETRY_ATTRS
                )
                if hit:
                    findings.append(Finding(
                        path=context.path, line=atom.lineno,
                        col=atom.col_offset + 1, checker="RPR204",
                        message=(
                            "truthiness branch on a telemetry object "
                            "— telemetry is null-object based; call "
                            "through unconditionally, or gate a "
                            "construction-time decision on '.enabled' "
                            "/ 'is None'"),
                    ))
    return findings


# ---------------------------------------------------------------------------
# RPR205: mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
})


@checker(
    "RPR205",
    "mutable-default",
    "Default argument values must be immutable.",
    rationale=(
        "A mutable default is evaluated once at definition time and "
        "shared across every call — state leaks between calls.  Use "
        "None and construct inside the function."),
    example="def f(items=[]): ...  # shared across calls",
)
def check_mutable_default(context) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (
                ast.List, ast.Dict, ast.Set,
                ast.ListComp, ast.SetComp, ast.DictComp,
            )) or (
                isinstance(default, ast.Call)
                and _call_name(default.func) in _MUTABLE_CALLS
            )
            if mutable:
                findings.append(Finding(
                    path=context.path, line=default.lineno,
                    col=default.col_offset + 1, checker="RPR205",
                    message=(
                        "mutable default argument — evaluated once "
                        "and shared across calls; default to None and "
                        "construct inside the function"),
                ))
    return findings


# ---------------------------------------------------------------------------
# RPR206: f-strings without placeholders
# ---------------------------------------------------------------------------


@checker(
    "RPR206",
    "f-string-placeholders",
    "f-strings contain at least one interpolated expression.",
    rationale=(
        "An 'f' prefix on a literal with no placeholders is almost "
        "always a forgotten interpolation or a leftover from an "
        "edit — either way the reader double-takes."),
    example='message = f"no placeholders here"',
)
def check_fstring_placeholders(context) -> List[Finding]:
    format_specs: Set[int] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.FormattedValue) \
                and node.format_spec is not None:
            format_specs.add(id(node.format_spec))
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.JoinedStr) \
                or id(node) in format_specs:
            continue
        if not any(isinstance(part, ast.FormattedValue)
                   for part in node.values):
            findings.append(Finding(
                path=context.path, line=node.lineno,
                col=node.col_offset + 1, checker="RPR206",
                message="f-string without placeholders — drop the "
                        "'f' prefix",
            ))
    return findings


# ---------------------------------------------------------------------------
# RPR207: unused imports
# ---------------------------------------------------------------------------


def _names_in_string_annotation(text: str) -> Set[str]:
    try:
        parsed = ast.parse(text, mode="eval")
    except SyntaxError:
        return set()
    return {n.id for n in ast.walk(parsed) if isinstance(n, ast.Name)}


def _used_names(tree: ast.Module) -> Set[str]:
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) \
                and isinstance(node.ctx, (ast.Load, ast.Del)):
            used.add(node.id)
        elif isinstance(node, ast.Assign):
            # ``__all__ = [...]`` re-exports by string name.
            targets = [t for t in node.targets
                       if isinstance(t, ast.Name)]
            if any(t.id == "__all__" for t in targets):
                for element in ast.walk(node.value):
                    if isinstance(element, ast.Constant) \
                            and isinstance(element.value, str):
                        used.add(element.value)
    # Forward references inside string annotations.
    for node in ast.walk(tree):
        annotation = None
        if isinstance(node, ast.AnnAssign):
            annotation = node.annotation
        elif isinstance(node, ast.arg):
            annotation = node.annotation
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            annotation = node.returns
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            used |= _names_in_string_annotation(annotation.value)
    return used


@checker(
    "RPR207",
    "unused-import",
    "Every import binding is referenced (or re-exported explicitly).",
    rationale=(
        "Dead imports hide real dependencies, slow cold start, and "
        "rot into confusion about what a module actually needs.  "
        "Deliberate re-exports are expressed via __all__ or the "
        "'import x as x' convention, both of which this check "
        "honours."),
    example="import os  # never referenced again",
)
def check_unused_imports(context) -> List[Finding]:
    used = _used_names(context.tree)
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            entries = [
                (alias.asname or alias.name.split(".")[0], alias)
                for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            entries = [(alias.asname or alias.name, alias)
                       for alias in node.names if alias.name != "*"]
        else:
            continue
        for binding, alias in entries:
            if alias.asname is not None and alias.asname == alias.name:
                continue  # 'import x as x': explicit re-export
            if binding not in used:
                findings.append(Finding(
                    path=context.path, line=node.lineno,
                    col=node.col_offset + 1, checker="RPR207",
                    message=f"'{binding}' imported but unused",
                ))
    return findings


# ---------------------------------------------------------------------------
# RPR208: unused local variables
# ---------------------------------------------------------------------------


def _direct_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """Statements in *func*'s body, not descending into nested scopes."""
    stack: List[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if isinstance(block, list):
                stack.extend(s for s in block
                             if isinstance(s, ast.stmt))
        for handler in getattr(stmt, "handlers", None) or ():
            stack.extend(handler.body)
        for case in getattr(stmt, "cases", None) or ():
            stack.extend(case.body)


@checker(
    "RPR208",
    "unused-variable",
    "Locals bound by simple assignment are read before the function "
    "ends.",
    rationale=(
        "An assigned-but-never-read local is either a leftover from "
        "a refactor or a bug where the wrong variable is used below.  "
        "Underscore-prefixed names opt out."),
    example="result = compute()  # then 'results' used instead",
)
def check_unused_variables(context) -> List[Finding]:
    findings: List[Finding] = []
    for func in ast.walk(context.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = {a.arg for a in (
            func.args.posonlyargs + func.args.args + func.args.kwonlyargs
            + ([func.args.vararg] if func.args.vararg else [])
            + ([func.args.kwarg] if func.args.kwarg else []))}
        declared: Set[str] = set()
        for stmt in _direct_statements(func):
            if isinstance(stmt, (ast.Global, ast.Nonlocal)):
                declared.update(stmt.names)
        candidates: Dict[str, ast.Name] = {}
        complex_bindings: Set[str] = set()
        for stmt in _direct_statements(func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                if not name.startswith("_") and name not in params \
                        and name not in declared:
                    candidates.setdefault(name, stmt.targets[0])
                continue
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.value is not None:
                name = stmt.target.id
                if not name.startswith("_") and name not in params \
                        and name not in declared:
                    candidates.setdefault(name, stmt.target)
                continue
            # Any other binding form makes the flow too dynamic to
            # flag safely: tuple unpacking, loop targets, with-as,
            # except-as, augmented assignment, walrus.
            for target in ast.walk(stmt):
                if isinstance(target, ast.Name) \
                        and isinstance(target.ctx, ast.Store):
                    complex_bindings.add(target.id)
        if not candidates:
            continue
        loads: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, (ast.Load, ast.Del)):
                loads.add(node.id)
        for name, target in sorted(candidates.items()):
            if name in loads or name in complex_bindings:
                continue
            findings.append(Finding(
                path=context.path, line=target.lineno,
                col=target.col_offset + 1, checker="RPR208",
                message=f"local variable '{name}' assigned but "
                        f"never used",
            ))
    return findings


__all__ = [
    "check_wall_clock_timing",
    "check_float32_accumulation",
    "check_bare_workspace_error",
    "check_telemetry_branch",
    "check_mutable_default",
    "check_fstring_placeholders",
    "check_unused_imports",
    "check_unused_variables",
]
