"""Reviewed-baseline support: grandfather known findings, gate new ones.

The baseline file is a JSON document listing accepted findings by
``(checker, path, message)`` — deliberately *without* line numbers, so
edits elsewhere in a file do not resurrect a reviewed entry.  Matching
is multiset-aware: a baseline entry absorbs at most as many current
findings as its recorded count, so duplicating a grandfathered
violation still fails the gate.

Each baseline records the checker-set version it was written under
(see :data:`repro.analysis.registry.CHECKER_SET_VERSION`); loading a
baseline from an older checker set reports it as stale so suppressions
are re-reviewed rather than silently trusted.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from ..exceptions import AnalysisError
from .findings import Finding
from .registry import CHECKER_SET_VERSION

BASELINE_FORMAT = "repro-analysis-baseline"


@dataclass
class Baseline:
    """Parsed baseline: accepted finding keys with multiplicities."""

    checker_set: int = CHECKER_SET_VERSION
    entries: Counter = field(default_factory=Counter)

    @property
    def stale(self) -> bool:
        """True when written under a different checker-set version."""
        return self.checker_set != CHECKER_SET_VERSION


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of applying a baseline to the current findings."""

    new: Tuple[Finding, ...]
    matched: int
    unused: Tuple[Tuple[str, str, str], ...]
    stale: bool


def load_baseline(path: Path) -> Baseline:
    """Load and validate a baseline file."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path}: invalid JSON: {exc}") from exc
    if not isinstance(document, dict) \
            or document.get("format") != BASELINE_FORMAT:
        raise AnalysisError(
            f"baseline {path}: not a {BASELINE_FORMAT!r} document")
    checker_set = document.get("checker_set")
    if not isinstance(checker_set, int):
        raise AnalysisError(f"baseline {path}: missing checker_set version")
    entries: Counter = Counter()
    raw_entries = document.get("findings", [])
    if not isinstance(raw_entries, list):
        raise AnalysisError(f"baseline {path}: findings must be a list")
    for raw in raw_entries:
        try:
            key = (str(raw["checker"]), str(raw["path"]),
                   str(raw["message"]))
        except (TypeError, KeyError) as exc:
            raise AnalysisError(
                f"baseline {path}: malformed entry {raw!r}") from exc
        entries[key] += int(raw.get("count", 1))
    return Baseline(checker_set=checker_set, entries=entries)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the current findings as a reviewed baseline."""
    counts: Counter = Counter(f.baseline_key() for f in findings)
    document = {
        "format": BASELINE_FORMAT,
        "checker_set": CHECKER_SET_VERSION,
        "findings": [
            {"checker": checker, "path": file_path, "message": message,
             "count": count}
            for (checker, file_path, message), count
            in sorted(counts.items())
        ],
    }
    path.write_text(json.dumps(document, indent=2) + "\n",
                    encoding="utf-8")


def apply_baseline(findings: Sequence[Finding],
                   baseline: Baseline) -> BaselineResult:
    """Split findings into new vs baselined; report unused entries."""
    remaining = Counter(baseline.entries)
    new: List[Finding] = []
    matched = 0
    for finding in sorted(findings):
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(finding)
    unused = tuple(sorted(
        key for key, count in remaining.items() if count > 0))
    return BaselineResult(new=tuple(new), matched=matched,
                          unused=unused, stale=baseline.stale)


def empty_baseline_document() -> Dict[str, object]:
    """The document an empty (clean-tree) baseline file contains."""
    return {
        "format": BASELINE_FORMAT,
        "checker_set": CHECKER_SET_VERSION,
        "findings": [],
    }


__all__ = [
    "BASELINE_FORMAT",
    "Baseline",
    "BaselineResult",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "empty_baseline_document",
]
