"""Online subsequence matchers: SPRING-style sDTW over unbounded streams.

Two complementary matchers monitor a stream for occurrences of a fixed
query pattern:

* :class:`SpringMatcher` — the SPRING algorithm (Sakurai et al., ICDE
  2007) adapted to this library's DTW substrate: a "star-padded" dynamic
  program whose virtual zeroth column lets a warp path start at *any*
  stream position, so one O(m)-per-tick column update tracks the best
  matching subsequence ending at the current tick over **all** possible
  start positions.  The column (and per-cell start bookkeeping) is carried
  across ticks — nothing is ever recomputed — and the non-overlap
  reporting discipline guarantees each reported match is the local optimum
  among all overlapping candidates.
* :class:`SlidingWindowMatcher` — fixed-length trailing windows scored
  under any of the paper's constraint families (Sections 3.3.1–3.3.3),
  guarded by the batch engine's cascading lower bounds (LB_Kim from
  O(1)-maintained window extrema, then LB_Keogh, then early-abandoning
  banded DTW).  The adaptive ``ac/aw`` constraints draw their
  locally relevant bands from an :class:`IncrementalExtractor` feature
  snapshot, i.e. the streaming analogue of the paper's salient-feature
  alignment pipeline (Sections 3.1–3.3) with extraction amortised across
  ticks exactly as Section 3.4 prescribes.

Both matchers report :class:`StreamMatch` intervals in absolute stream
coordinates and keep :class:`StreamStats` work accounting compatible with
the paper's cell-based time-gain measure (Section 4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series, check_positive
from ..core.bands import (
    ConstraintSpec,
    build_constraint_band,
    parse_constraint_spec,
)
from ..core.config import SDTWConfig
from ..core.consistency import prune_inconsistent_pairs
from ..core.features import SalientFeature, extract_salient_features
from ..core.intervals import build_interval_partition
from ..core.matching import match_salient_features
from ..dtw.banded import banded_dtw
from ..dtw.constraints import full_band, itakura_band, sakoe_chiba_band_fraction
from ..dtw.distances import PointwiseDistance, get_pointwise_distance
from ..dtw.lower_bounds import keogh_envelope, lb_keogh
from ..exceptions import ValidationError
from .buffer import SlidingExtrema, StreamBuffer
from .incremental import IncrementalExtractor

# Pointwise distances the LB_Kim / LB_Keogh derivations hold for (same
# set as the batch engine).
_BOUNDABLE_DISTANCES = ("absolute", "manhattan")


@dataclass(frozen=True)
class StreamMatch:
    """One reported occurrence of a pattern in a stream.

    ``start`` and ``end`` are inclusive absolute stream indices: the
    matched subsequence is ``stream[start .. end]``.
    """

    pattern: str
    stream: str
    start: int
    end: int
    distance: float

    @property
    def length(self) -> int:
        """Number of stream samples the match covers."""
        return self.end - self.start + 1

    def overlaps(self, other: "StreamMatch") -> bool:
        """True when the two match intervals share at least one sample."""
        return self.start <= other.end and other.start <= self.end


@dataclass
class StreamStats:
    """Per-pattern work accounting for stream monitoring.

    The counters mirror :class:`repro.engine.stats.EngineStats` so the
    streaming cascade can be read with the same cost model: ``ticks`` that
    were pruned by a lower bound contribute no DP cells, and
    ``cells_filled`` over ``total_cells`` is the paper's
    hardware-independent time-gain measure applied per tick instead of per
    stored series.
    """

    ticks: int = 0
    evaluated: int = 0
    pruned_lb_kim: int = 0
    pruned_lb_keogh: int = 0
    dp_runs: int = 0
    dp_abandoned: int = 0
    cells_filled: int = 0
    total_cells: int = 0
    matches: int = 0

    @property
    def pruned(self) -> int:
        """Ticks discarded by a lower bound before any DP work."""
        return self.pruned_lb_kim + self.pruned_lb_keogh

    @property
    def prune_rate(self) -> float:
        """Fraction of evaluated ticks eliminated by the bound cascade."""
        if self.evaluated == 0:
            return 0.0
        return self.pruned / float(self.evaluated)

    @property
    def cell_fraction(self) -> float:
        """Fraction of the naive per-tick grid work actually performed."""
        if self.total_cells == 0:
            return 0.0
        return self.cells_filled / float(self.total_cells)

    def rows(self) -> List[List[object]]:
        """Rows for a summary table (used by the CLI and benchmarks)."""
        return [
            ["ticks", self.ticks, ""],
            ["windows evaluated", self.evaluated, ""],
            ["pruned by LB_Kim", self.pruned_lb_kim, "O(1) per tick"],
            ["pruned by LB_Keogh", self.pruned_lb_keogh, ""],
            ["DP abandoned early", self.dp_abandoned, ""],
            ["DP completed", self.dp_runs, ""],
            ["cells filled", self.cells_filled,
             f"{self.cell_fraction:.1%} of naive"],
            ["matches", self.matches, ""],
        ]


class MatchSuppressor:
    """Non-overlapping local-minima selection over a distance profile.

    Both the online sliding matcher and the offline reference scan feed
    their per-tick window distances through this policy, so "which of
    several overlapping sub-threshold windows is *the* match" is defined
    in exactly one place: among overlapping qualifying windows the one
    with the smallest distance wins, and a candidate is emitted as soon as
    no later overlapping window can beat it.
    """

    def __init__(self, window_length: int, threshold: float) -> None:
        self.window_length = int(window_length)
        self.threshold = float(threshold)
        self._best_distance = np.inf
        self._best_end = -1

    def observe(self, tick: int, distance: float) -> Optional[Tuple[int, int, float]]:
        """Feed the window distance at *tick*; maybe emit a settled match.

        Pruned ticks (lower bound above threshold) should be fed ``inf``:
        the bound proves they cannot qualify, but time still advances the
        non-overlap bookkeeping.
        """
        emitted = None
        if self._best_end >= 0 and tick - self._best_end >= self.window_length:
            emitted = self.flush()
        if distance <= self.threshold:
            if self._best_end < 0 or distance < self._best_distance:
                self._best_distance = float(distance)
                self._best_end = int(tick)
        return emitted

    def flush(self) -> Optional[Tuple[int, int, float]]:
        """Emit the pending candidate (stream end / teardown)."""
        if self._best_end < 0:
            return None
        start = self._best_end - self.window_length + 1
        result = (start, self._best_end, self._best_distance)
        self._best_distance = np.inf
        self._best_end = -1
        return result


class SpringMatcher:
    """SPRING-style streaming subsequence DTW against one pattern.

    Parameters
    ----------
    pattern:
        The query pattern ``Y`` (length m).
    threshold:
        Matching threshold ε: subsequences with DTW distance ``<= ε`` are
        match candidates.
    distance:
        Pointwise element distance (default absolute difference, the
        paper's choice).
    name:
        Label stamped on reported matches.

    Notes
    -----
    The carried state is one DP column ``d[i] = min over start s of
    DTW(Y[:i+1], X[s..t])`` plus the per-cell optimal start ``s[i]``; both
    are updated with O(m) vectorised work per tick using the same
    prefix-sum formulation as the batch banded kernel
    (:mod:`repro.dtw.banded`), so the matcher never revisits past stream
    samples.  Reporting follows SPRING's discipline: a candidate is
    emitted only when no still-open warping path could produce an
    overlapping match with a smaller distance, which yields
    non-overlapping, locally optimal match intervals.
    """

    def __init__(
        self,
        pattern: Union[Sequence[float], np.ndarray],
        threshold: float,
        *,
        distance: Union[str, PointwiseDistance, None] = None,
        name: str = "pattern",
    ) -> None:
        self.pattern = as_series(pattern, "pattern")
        self.threshold = check_positive(float(threshold), "threshold")
        self.name = str(name)
        self._dist = get_pointwise_distance(distance)
        m = self.pattern.size
        self._m = m
        self._indices = np.arange(m)
        self._d = np.full(m, np.inf)
        self._s = np.zeros(m, dtype=int)
        self._best_distance = np.inf
        self._best_start = -1
        self._best_end = -1
        self._ticks = 0
        self.stats = StreamStats()

    @property
    def window_length(self) -> int:
        """Pattern length (the matcher needs no stream window at all)."""
        return self._m

    def update(self, value: float) -> List[StreamMatch]:
        """Consume the next stream sample; return matches settled this tick."""
        value = float(value)
        if not math.isfinite(value):
            # One NaN would permanently poison the carried column.
            raise ValidationError(f"stream sample must be finite, got {value}")
        t = self._ticks
        self._ticks += 1
        m = self._m
        stats = self.stats
        stats.ticks += 1
        stats.evaluated += 1
        stats.cells_filled += m
        stats.total_cells += m * (t + 1)

        cost = self._dist(float(value), self.pattern)
        d_prev = self._d
        s_prev = self._s
        # Entry values per row: the better of the diagonal predecessor
        # (d_prev[i-1]) and the vertical predecessor (d_prev[i]); row 0's
        # diagonal is the virtual star-padding cell (distance 0, start t).
        diag = np.empty(m)
        diag[0] = 0.0
        diag[1:] = d_prev[:-1]
        diag_s = np.empty(m, dtype=int)
        diag_s[0] = t
        diag_s[1:] = s_prev[:-1]
        take_diag = diag <= d_prev
        entry = np.where(take_diag, diag, d_prev)
        entry_s = np.where(take_diag, diag_s, s_prev)
        # In-column scan d[i] = cost[i] + min(entry[i], d[i-1]) via the
        # prefix-sum closed form (see _banded_dtw_distance_only), plus a
        # first-achiever argmin to propagate the start bookkeeping.
        prefix = np.cumsum(cost)
        shifted = np.empty(m)
        shifted[0] = 0.0
        shifted[1:] = prefix[:-1]
        offsets = entry - shifted
        running = np.minimum.accumulate(offsets)
        d_new = prefix + running
        previous_running = np.empty(m)
        previous_running[0] = np.inf
        previous_running[1:] = running[:-1]
        improved = offsets < previous_running
        source = np.maximum.accumulate(np.where(improved, self._indices, -1))
        s_new = entry_s[source]

        matches: List[StreamMatch] = []
        if self._best_distance <= self.threshold:
            # Report once no open path can extend into a better
            # overlapping match (SPRING's disjoint-match condition).
            blocked = (d_new < self._best_distance) & (s_new <= self._best_end)
            if not blocked.any():
                matches.append(self._emit())
                self._best_distance = np.inf
                self._best_start = -1
                self._best_end = -1
        if matches:
            # Invalidate cells belonging to the reported region so no
            # overlapping match can be reported again.
            reported = matches[-1]
            d_new = np.where(s_new <= reported.end, np.inf, d_new)
        if d_new[m - 1] <= self.threshold and d_new[m - 1] < self._best_distance:
            self._best_distance = float(d_new[m - 1])
            self._best_start = int(s_new[m - 1])
            self._best_end = t
        self._d = d_new
        self._s = s_new
        return matches

    def _emit(self) -> StreamMatch:
        self.stats.matches += 1
        return StreamMatch(
            pattern=self.name,
            stream="",
            start=self._best_start,
            end=self._best_end,
            distance=self._best_distance,
        )

    def finalize(self) -> List[StreamMatch]:
        """Flush the pending candidate at end of stream (if any)."""
        if self._best_distance <= self.threshold:
            match = self._emit()
            self._best_distance = np.inf
            self._best_start = -1
            self._best_end = -1
            self._d = np.where(self._s <= match.end, np.inf, self._d)
            return [match]
        return []


def shift_snapshot_features(
    features: Sequence[SalientFeature],
    shift: int,
    window_length: int,
) -> List[SalientFeature]:
    """Re-express snapshot features in the coordinates of a newer window.

    The extractor's snapshot window starts *shift* ticks before the
    current one; features that slid off the front are dropped and scopes
    are clipped to the new window extent, mirroring what batch extraction
    clips at the series boundary.
    """
    if shift == 0:
        return list(features)
    shifted: List[SalientFeature] = []
    limit = float(window_length - 1)
    for feature in features:
        position = feature.position - shift
        if position < 0.0 or position > limit:
            continue
        shifted.append(
            replace(
                feature,
                position=position,
                scope_start=max(0.0, feature.scope_start - shift),
                scope_end=min(limit, feature.scope_end - shift),
            )
        )
    return shifted


def build_stream_band(
    spec: ConstraintSpec,
    window_features: Sequence[SalientFeature],
    pattern_features: Sequence[SalientFeature],
    window_length: int,
    pattern_length: int,
    config: SDTWConfig,
) -> np.ndarray:
    """Locally relevant band for (window, pattern) from feature snapshots.

    This is the streaming counterpart of :meth:`repro.core.sdtw.SDTW.build_band`:
    matching + inconsistency pruning + interval partitioning (Sections
    3.2–3.3) run on pre-extracted features, so the only per-tick cost is
    the alignment itself.  Shared by the online matcher and the offline
    reference scan so both derive identical bands from identical features.
    """
    matches = match_salient_features(
        window_features, pattern_features, config.matching
    )
    consistent = prune_inconsistent_pairs(matches, config.matching)
    partition = build_interval_partition(consistent, window_length, pattern_length)
    band = build_constraint_band(
        window_length, pattern_length, spec, partition, config
    )
    if config.symmetric_band:
        from ..core.bands import build_symmetric_band

        reverse_matches = match_salient_features(
            pattern_features, window_features, config.matching
        )
        reverse_consistent = prune_inconsistent_pairs(
            reverse_matches, config.matching
        )
        reverse_partition = build_interval_partition(
            reverse_consistent, pattern_length, window_length
        )
        reverse_band = build_constraint_band(
            pattern_length, window_length, spec, reverse_partition, config
        )
        band = build_symmetric_band(
            band, reverse_band, window_length, pattern_length
        )
    return band


class SlidingWindowMatcher:
    """Cascaded constrained-DTW monitoring of fixed-length trailing windows.

    Every tick the trailing ``m`` samples (m = pattern length) form a
    candidate window; the matcher prices it through the engine's cascade
    — O(1) LB_Kim from incrementally maintained window extrema, O(m)
    LB_Keogh against the pattern's precomputed envelope, then
    early-abandoning banded DTW under the configured constraint family —
    and feeds the resulting distance profile through the shared
    non-overlap suppression policy.  Both bounds lower-bound the *full*
    DTW and therefore every constrained DTW (the same admissibility
    argument as :class:`repro.engine.DistanceEngine`), so pruning never
    changes which matches are reported.
    """

    def __init__(
        self,
        pattern: Union[Sequence[float], np.ndarray],
        threshold: float,
        *,
        constraint: Union[str, ConstraintSpec] = "fc,fw",
        config: Optional[SDTWConfig] = None,
        name: str = "pattern",
        use_lb_kim: bool = True,
        use_lb_keogh: bool = True,
        early_abandon: bool = True,
        extractor_hop: Optional[int] = None,
        extractor: Optional[IncrementalExtractor] = None,
        itakura_max_slope: float = 2.0,
    ) -> None:
        self.pattern = as_series(pattern, "pattern")
        self.threshold = check_positive(float(threshold), "threshold")
        self.config = config if config is not None else SDTWConfig()
        self.name = str(name)
        m = self.pattern.size
        self._m = m
        self._func = get_pointwise_distance(self.config.pointwise_distance)
        distance_name = self.config.pointwise_distance
        admissible = (
            isinstance(distance_name, str)
            and distance_name.strip().lower() in _BOUNDABLE_DISTANCES
        )
        self.use_lb_kim = bool(use_lb_kim and admissible)
        self.use_lb_keogh = bool(use_lb_keogh and admissible)
        self.early_abandon = bool(early_abandon)

        self._spec: Optional[ConstraintSpec] = None
        self._shared_band: Optional[np.ndarray] = None
        self._extractor: Optional[IncrementalExtractor] = None
        self._pattern_features: Tuple[SalientFeature, ...] = ()
        self.constraint = self._resolve_constraint(
            constraint, itakura_max_slope, extractor_hop, extractor
        )

        # Pattern-side precomputation (the paper's one-time cost): LB_Kim
        # endpoints/extrema and the LB_Keogh envelope.
        self._y_first = float(self.pattern[0])
        self._y_last = float(self.pattern[-1])
        self._y_min = float(self.pattern.min())
        self._y_max = float(self.pattern.max())
        if self.constraint == "fc,fw":
            # One more sample than the band's half-width, matching the
            # engine's admissible pairing of envelope and band radius.
            radius = max(
                1, int(round(self.config.width_fraction * m / 2.0))
            ) + 1
            self._envelope = keogh_envelope(self.pattern, radius)
            self._envelope_radius = radius
        else:
            self._envelope = None
            self._envelope_radius = None

        self._extrema = SlidingExtrema(m)
        self._suppressor = MatchSuppressor(m, self.threshold)
        self.stats = StreamStats()

    def _resolve_constraint(
        self,
        constraint: Union[str, ConstraintSpec],
        itakura_max_slope: float,
        extractor_hop: Optional[int],
        extractor: Optional[IncrementalExtractor],
    ) -> str:
        m = self._m
        if isinstance(constraint, str):
            key = constraint.strip().lower().replace(" ", "")
            if key == "full":
                self._shared_band = full_band(m, m)
                return "full"
            if key == "itakura":
                if itakura_max_slope <= 1.0:
                    raise ValidationError("itakura_max_slope must be greater than 1")
                self._shared_band = itakura_band(m, m, itakura_max_slope)
                return "itakura"
        spec = parse_constraint_spec(constraint)
        if spec.core == "adaptive" or spec.width == "adaptive":
            self._spec = spec
            if extractor is not None:
                # Shared extractor (e.g. one per stream for all patterns of
                # this length): observe() is idempotent within a tick, so
                # several matchers can safely drive the same instance.
                if extractor.window_length != m:
                    raise ValidationError(
                        f"shared extractor maintains windows of "
                        f"{extractor.window_length} samples but the pattern "
                        f"has {m}"
                    )
                self._extractor = extractor
            else:
                self._extractor = IncrementalExtractor(
                    m, self.config, hop=extractor_hop
                )
            self._pattern_features = tuple(
                extract_salient_features(self.pattern, self.config)
            )
        else:
            self._shared_band = sakoe_chiba_band_fraction(
                m, m, self.config.width_fraction
            )
        return spec.label

    @property
    def window_length(self) -> int:
        """Length of the trailing windows being scored (= pattern length)."""
        return self._m

    @property
    def extractor(self) -> Optional[IncrementalExtractor]:
        """The incremental feature extractor (adaptive constraints only)."""
        return self._extractor

    # ------------------------------------------------------------------ #
    # Per-tick cascade
    # ------------------------------------------------------------------ #
    def _window_distance(self, window: np.ndarray, tick: int) -> float:
        """Price one window through LB_Kim -> LB_Keogh -> banded DTW."""
        stats = self.stats
        threshold = self.threshold
        if self.use_lb_kim:
            bound = max(
                abs(float(window[0]) - self._y_first),
                abs(float(window[-1]) - self._y_last),
                abs(self._extrema.maximum - self._y_max),
                abs(self._extrema.minimum - self._y_min),
            )
            if bound > threshold:
                stats.pruned_lb_kim += 1
                return np.inf
        if self.use_lb_keogh:
            if self._envelope is not None:
                bound = lb_keogh(
                    window, self.pattern, self._envelope_radius,
                    envelope=self._envelope,
                )
            else:
                # Global envelope: admissible against the full DTW and
                # hence against every constrained DTW.
                above = np.maximum(window - self._y_max, 0.0)
                below = np.maximum(self._y_min - window, 0.0)
                bound = float(above.sum() + below.sum())
            if bound > threshold:
                stats.pruned_lb_keogh += 1
                return np.inf
        band = self._current_band(tick)
        result = banded_dtw(
            window, self.pattern, band, self.config.pointwise_distance,
            return_path=False,
            abandon_threshold=threshold if self.early_abandon else None,
        )
        stats.cells_filled += result.cells_filled
        if result.abandoned:
            stats.dp_abandoned += 1
            return np.inf
        stats.dp_runs += 1
        return float(result.distance)

    def _current_band(self, tick: int) -> np.ndarray:
        if self._shared_band is not None:
            return self._shared_band
        window_start = tick - self._m + 1
        shift = window_start - self._extractor.snapshot_start
        window_features = shift_snapshot_features(
            self._extractor.features(), shift, self._m
        )
        return build_stream_band(
            self._spec, window_features, self._pattern_features,
            self._m, self._m, self.config,
        )

    def update(self, buffer: StreamBuffer) -> List[StreamMatch]:
        """Score the window ending at the buffer's newest sample.

        The caller appends the sample to *buffer* first; the matcher reads
        the trailing window zero-copy.  Returns matches settled this tick.
        """
        tick = buffer.total - 1
        value = buffer.view(1)[0]
        self._extrema.push(value)
        if self._extractor is not None:
            self._extractor.observe(buffer)
        self.stats.ticks += 1
        if buffer.total < self._m:
            return []
        self.stats.evaluated += 1
        self.stats.total_cells += self._m * self._m
        window = buffer.view(self._m)
        distance = self._window_distance(window, tick)
        emitted = self._suppressor.observe(tick, distance)
        return [self._wrap(emitted)] if emitted is not None else []

    def _wrap(self, emitted: Tuple[int, int, float]) -> StreamMatch:
        start, end, distance = emitted
        self.stats.matches += 1
        return StreamMatch(
            pattern=self.name, stream="", start=start, end=end, distance=distance
        )

    def finalize(self) -> List[StreamMatch]:
        """Flush the pending suppressed candidate at end of stream."""
        emitted = self._suppressor.flush()
        return [self._wrap(emitted)] if emitted is not None else []
