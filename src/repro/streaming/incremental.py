"""Incremental salient-feature extraction over a sliding stream window.

Section 3.4 of the paper argues that salient-feature extraction (task (a))
is a one-time, amortisable cost per stored series.  In the streaming
setting there is no "one time": the trailing window changes every tick.
:class:`IncrementalExtractor` restores the amortisation by maintaining the
window's Gaussian/DoG scale space (Section 3.1.2, Step 1) *incrementally*:

* **Interior reuse.**  A Gaussian convolution value depends only on the
  samples inside its kernel support; window-edge reflection padding dirties
  at most a ``kernel radius`` margin at each end.  When the window slides,
  every interior smoothed value is therefore reused verbatim and only the
  two edge margins plus the freshly appended tail are re-convolved.  The
  reuse bookkeeping tracks, per octave, how far the edge contamination
  propagates through the smoothing + downsampling chain, so the maintained
  pyramid is **bit-identical** to rebuilding it from scratch with
  :func:`repro.core.scale_space.build_scale_space`.
* **Hop-based refresh.**  Keypoint detection and descriptor creation
  (Steps 2–3) run once per ``hop`` ticks rather than per tick; between
  refreshes the feature snapshot (kept in absolute stream coordinates) is
  served unchanged.
* **Descriptor caching.**  A descriptor only depends on samples within a
  bounded support around its keypoint.  Keypoints whose support lies in
  the window interior keep their descriptor across refreshes (keyed by
  absolute position and scale), so the per-refresh descriptor cost is
  proportional to feature churn at the window edges, not to the feature
  count.

The net effect is the paper's "extract once, reuse everywhere" economics
transplanted to unbounded streams: the per-tick cost of feature
maintenance is O(1) amortised in the window length.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._validation import check_int_at_least
from ..core.config import SDTWConfig
from ..core.descriptors import compute_descriptor, descriptor_window_radius
from ..core.features import SalientFeature
from ..core.keypoints import Keypoint, detect_keypoints
from ..core.scale_space import ScaleLevel, ScaleSpace
from ..exceptions import ValidationError
from ..utils.preprocessing import downsample_by_two, gaussian_smooth
from .buffer import StreamBuffer


def _kernel_radius(sigma: float, truncate: float = 4.0) -> int:
    """Support radius of :func:`repro.utils.preprocessing.gaussian_kernel`."""
    return max(1, int(truncate * sigma + 0.5))


def _smooth_region(base: np.ndarray, sigma: float, lo: int, hi: int) -> np.ndarray:
    """``gaussian_smooth(base, sigma)[lo:hi]`` computed from a context chunk.

    The chunk extends ``kernel radius`` samples beyond the requested region
    on each side, so every requested output either sees exactly the real
    samples the full-window convolution sees, or — when the region touches
    a window edge — exactly the same reflection padding.  The result is
    bit-identical to slicing the full-window convolution.
    """
    n = base.size
    radius = _kernel_radius(sigma)
    chunk_lo = max(0, lo - radius)
    chunk_hi = min(n, hi + radius)
    if chunk_lo == 0 and chunk_hi == n:
        return gaussian_smooth(base, sigma)[lo:hi]
    smoothed = gaussian_smooth(base[chunk_lo:chunk_hi], sigma)
    return smoothed[lo - chunk_lo: hi - chunk_lo]


def _incremental_smooth(
    base: np.ndarray,
    sigma: float,
    prev: Optional[np.ndarray],
    shift: Optional[int],
    dirty_head: int = 0,
    dirty_tail: int = 0,
) -> Tuple[np.ndarray, int]:
    """``gaussian_smooth(base, sigma)``, reusing the interior of *prev*.

    Parameters
    ----------
    base:
        The new (exact) base series to smooth.
    sigma:
        Smoothing scale.
    prev:
        The smoothed array of the previous base, or ``None`` to force a
        full recomputation.
    shift:
        How many samples the base advanced since *prev* was computed
        (``new_base[j]`` covers the same absolute sample as
        ``prev_base[j + shift]``); ``None`` forces a full recomputation.
    dirty_head, dirty_tail:
        How many leading/trailing samples of the *base* series are
        window-dependent (contaminated by upstream edge padding).  Zero for
        raw windows; positive for downsampled octave bases.

    Returns
    -------
    (smoothed, reused):
        The full smoothed array (bit-identical to a from-scratch
        ``gaussian_smooth``) and how many output samples were reused.
    """
    n = base.size
    radius = _kernel_radius(sigma)
    if (
        prev is None
        or shift is None
        or shift < 0
        or prev.size != n
    ):
        return gaussian_smooth(base, sigma), 0
    # A value is reusable when its whole kernel support was clean
    # (window-independent) in the previous window *and* is clean in the
    # current one; outside that range the previous value reflects stale
    # edge padding.
    lo = dirty_head + radius
    hi = n - dirty_tail - radius - shift
    if hi - lo <= 0:
        return gaussian_smooth(base, sigma), 0
    out = np.empty(n)
    out[lo:hi] = prev[lo + shift: hi + shift]
    if lo > 0:
        out[:lo] = _smooth_region(base, sigma, 0, lo)
    if hi < n:
        out[hi:] = _smooth_region(base, sigma, hi, n)
    return out, hi - lo


@dataclass
class ExtractorStats:
    """Work accounting for one :class:`IncrementalExtractor`.

    ``samples_reused`` / ``samples_convolved`` count smoothed output
    samples served from the previous refresh versus re-convolved; their
    ratio is the incremental gain of the scale-space maintenance.
    ``descriptors_reused`` / ``descriptors_computed`` play the same role
    for Step 3.
    """

    refreshes: int = 0
    full_refreshes: int = 0
    samples_reused: int = 0
    samples_convolved: int = 0
    descriptors_reused: int = 0
    descriptors_computed: int = 0

    @property
    def reuse_fraction(self) -> float:
        """Fraction of smoothed samples served without re-convolving."""
        total = self.samples_reused + self.samples_convolved
        return self.samples_reused / total if total else 0.0


@dataclass
class _OctavePlan:
    """Static per-octave geometry of the window's scale space."""

    octave: int
    step: int
    length: int
    sigmas_local: List[float]
    sigmas_absolute: List[float]
    radii: List[int]
    dirty_head: int
    dirty_tail: int


class IncrementalExtractor:
    """Maintain the salient features of a sliding window incrementally.

    Parameters
    ----------
    window_length:
        Length of the trailing window features are extracted from.
    config:
        Full sDTW configuration (scale-space + descriptor sections used).
    hop:
        Refresh cadence in ticks: features are re-extracted whenever the
        window start advanced by at least this many samples since the last
        refresh.  Defaults to ``max(stride, window_length // 8)`` rounded
        to a multiple of the coarsest octave stride, which keeps every
        octave's downsampling phase aligned between refreshes (maximum
        interior reuse); misaligned refreshes still work but fall back to
        full recomputation for the misaligned octaves.

    Notes
    -----
    :meth:`features` is guaranteed to equal
    ``extract_salient_features(window, config)`` for the snapshot window —
    the test suite asserts exact equality — so downstream consumers
    (adaptive band construction, the Table 2 statistics) cannot tell the
    incremental and batch paths apart.
    """

    def __init__(
        self,
        window_length: int,
        config: Optional[SDTWConfig] = None,
        *,
        hop: Optional[int] = None,
        reuse_descriptors: bool = True,
    ) -> None:
        self.config = config if config is not None else SDTWConfig()
        self.window_length = check_int_at_least(window_length, 4, "window_length")
        self.reuse_descriptors = bool(reuse_descriptors)
        self._plans = self._build_plans()
        self.stride = self._plans[-1].step if self._plans else 1
        if hop is None:
            hop = max(self.stride, self.window_length // 8)
            hop -= hop % self.stride
            hop = max(self.stride, hop)
        self.hop = check_int_at_least(hop, 1, "hop")
        # Mutable refresh state.
        self._snapshot_start: Optional[int] = None
        self._smoothed: List[List[np.ndarray]] = []
        self._desc_smoothed: Dict[float, Tuple[np.ndarray, int]] = {}
        self._descriptor_cache: Dict[Tuple[float, float], np.ndarray] = {}
        self._features: Tuple[SalientFeature, ...] = ()
        self.stats = ExtractorStats()

    # ------------------------------------------------------------------ #
    # Static geometry
    # ------------------------------------------------------------------ #
    def _build_plans(self) -> List[_OctavePlan]:
        """Mirror the octave/level layout of ``build_scale_space`` exactly.

        The dirty-margin recursion tracks how far window-edge padding
        contaminates each octave base: smoothing widens the contaminated
        margin by its kernel radius, downsampling halves it (rounding up).
        """
        ss = self.config.scale_space
        n = self.window_length
        num_octaves = ss.octaves_for_length(n)
        s = ss.levels_per_octave
        kappa = ss.kappa
        plans: List[_OctavePlan] = []
        length = n
        dirty_head = 0
        dirty_tail = 0
        for octave in range(num_octaves):
            if length < 4:
                break
            step = 2 ** octave
            sigmas_local = [ss.base_sigma * (kappa ** lvl) for lvl in range(s + 1)]
            plans.append(
                _OctavePlan(
                    octave=octave,
                    step=step,
                    length=length,
                    sigmas_local=sigmas_local,
                    sigmas_absolute=[
                        ss.base_sigma * (kappa ** lvl) * step for lvl in range(s)
                    ],
                    radii=[_kernel_radius(sig) for sig in sigmas_local],
                    dirty_head=dirty_head,
                    dirty_tail=dirty_tail,
                )
            )
            # The next octave downsamples the most-smoothed version: its
            # contamination margin grows by that kernel radius, then halves.
            last_radius = _kernel_radius(sigmas_local[-1])
            dirty_head = -((dirty_head + last_radius) // -2)
            dirty_tail = -((dirty_tail + last_radius) // -2)
            length = -(length // -2)
        return plans

    # ------------------------------------------------------------------ #
    # Refresh driving
    # ------------------------------------------------------------------ #
    @property
    def ready(self) -> bool:
        """True once at least one window has been extracted."""
        return self._snapshot_start is not None

    @property
    def snapshot_start(self) -> Optional[int]:
        """Absolute index of the first sample of the snapshot window."""
        return self._snapshot_start

    @property
    def snapshot_end(self) -> Optional[int]:
        """Absolute index of the last sample of the snapshot window."""
        if self._snapshot_start is None:
            return None
        return self._snapshot_start + self.window_length - 1

    def observe(self, buffer: StreamBuffer) -> bool:
        """Refresh from the buffer's trailing window if a refresh is due.

        Returns True when a refresh happened.  Call once per tick; the
        refresh fires on the first full window and every ``hop`` ticks
        after.
        """
        if buffer.total < self.window_length:
            return False
        start = buffer.total - self.window_length
        if self._snapshot_start is not None and start - self._snapshot_start < self.hop:
            return False
        self.refresh(buffer.view(self.window_length), start)
        return True

    def refresh(self, window: np.ndarray, window_start: int) -> Tuple[SalientFeature, ...]:
        """Force re-extraction on *window* (absolute start *window_start*)."""
        # Own copy: callers typically pass a live, zero-copy buffer view.
        window = np.array(window, dtype=float)
        if window.size != self.window_length:
            raise ValidationError(
                f"window has {window.size} samples, expected {self.window_length}"
            )
        shift = (
            window_start - self._snapshot_start
            if self._snapshot_start is not None
            else None
        )
        if shift is not None and shift <= 0:
            shift = None
        self.stats.refreshes += 1
        if shift is None:
            self.stats.full_refreshes += 1
        space = self._update_scale_space(window, shift)
        keypoints = detect_keypoints(space)
        self._snapshot_start = window_start
        self._features = self._build_features(window, window_start, keypoints, shift)
        return self._features

    # ------------------------------------------------------------------ #
    # Scale-space maintenance (Step 1)
    # ------------------------------------------------------------------ #
    def _update_scale_space(self, window: np.ndarray, shift: Optional[int]) -> ScaleSpace:
        levels: List[ScaleLevel] = []
        new_state: List[List[np.ndarray]] = []
        base = window.copy()
        for k, plan in enumerate(self._plans):
            # Octave k's base realigns between refreshes only when the
            # window moved by a multiple of its sampling step.
            shift_k = (
                shift // plan.step
                if shift is not None and shift % plan.step == 0
                else None
            )
            prev_versions = self._smoothed[k] if k < len(self._smoothed) else None
            versions: List[np.ndarray] = []
            for lvl, sigma_local in enumerate(plan.sigmas_local):
                prev = prev_versions[lvl] if prev_versions is not None else None
                smoothed, reused = _incremental_smooth(
                    base, sigma_local, prev, shift_k,
                    plan.dirty_head, plan.dirty_tail,
                )
                versions.append(smoothed)
                self.stats.samples_reused += reused
                self.stats.samples_convolved += base.size - reused
            for lvl in range(len(plan.sigmas_local) - 1):
                levels.append(
                    ScaleLevel(
                        octave=plan.octave,
                        level=lvl,
                        sigma=plan.sigmas_absolute[lvl],
                        sampling_step=plan.step,
                        smoothed=versions[lvl],
                        dog=versions[lvl + 1] - versions[lvl],
                    )
                )
            new_state.append(versions)
            base = downsample_by_two(versions[-1])
        self._smoothed = new_state
        return ScaleSpace(
            series=window, levels=tuple(levels), config=self.config.scale_space
        )

    # ------------------------------------------------------------------ #
    # Descriptors and feature assembly (Steps 2-3)
    # ------------------------------------------------------------------ #
    def _descriptor_smoothed(
        self, window: np.ndarray, sigma: float, window_start: int
    ) -> np.ndarray:
        """Full-resolution smoothing at a keypoint σ, maintained incrementally."""
        sigma_key = round(sigma, 6)
        state = self._desc_smoothed.get(sigma_key)
        prev, shift = None, None
        if state is not None:
            prev, prev_start = state
            shift = window_start - prev_start
        smoothed, reused = _incremental_smooth(window, sigma, prev, shift)
        self.stats.samples_reused += reused
        self.stats.samples_convolved += window.size - reused
        self._desc_smoothed[sigma_key] = (smoothed, window_start)
        return smoothed

    def _descriptor_cacheable(self, keypoint: Keypoint, sigma_radius: int) -> bool:
        """True when the descriptor's whole support is window-independent.

        The support spans the descriptor window plus one sample for the
        centred gradient plus the smoothing kernel radius; if any of it
        touches a window edge the descriptor value depends on where the
        window currently starts and must not be shared across refreshes.
        """
        margin = (
            descriptor_window_radius(keypoint.sigma, self.config.descriptor)
            + 1 + sigma_radius
        )
        return (
            keypoint.position - margin >= 0
            and keypoint.position + margin <= self.window_length - 1
        )

    def _build_features(
        self,
        window: np.ndarray,
        window_start: int,
        keypoints: List[Keypoint],
        shift: Optional[int],
    ) -> Tuple[SalientFeature, ...]:
        n = window.size
        features: List[SalientFeature] = []
        fresh_cache: Dict[Tuple[float, float], np.ndarray] = {}
        for kp in keypoints:
            sigma_key = round(kp.sigma, 6)
            cache_key = (round(kp.position + window_start, 6), sigma_key)
            sigma_radius = _kernel_radius(kp.sigma)
            cacheable = (
                self.reuse_descriptors
                and shift is not None
                and self._descriptor_cacheable(kp, sigma_radius)
            )
            descriptor = self._descriptor_cache.get(cache_key) if cacheable else None
            if descriptor is not None:
                self.stats.descriptors_reused += 1
            else:
                smoothed = self._descriptor_smoothed(window, kp.sigma, window_start)
                descriptor = compute_descriptor(
                    window, kp.position, kp.sigma, self.config.descriptor,
                    smoothed=smoothed,
                )
                self.stats.descriptors_computed += 1
            if self.reuse_descriptors and self._descriptor_cacheable(kp, sigma_radius):
                fresh_cache[cache_key] = descriptor
            scope_start = max(0.0, kp.scope_start)
            scope_end = min(float(n - 1), kp.scope_end)
            lo = int(np.floor(scope_start))
            hi = int(np.ceil(scope_end)) + 1
            mean_amplitude = (
                float(window[lo:hi].mean()) if hi > lo else float(window[lo])
            )
            features.append(
                SalientFeature(
                    position=kp.position,
                    sigma=kp.sigma,
                    scope_start=scope_start,
                    scope_end=scope_end,
                    octave=kp.octave,
                    level=kp.level,
                    amplitude=kp.amplitude,
                    mean_amplitude=mean_amplitude,
                    dog_value=kp.dog_value,
                    scale_class=kp.scale_class,
                    descriptor=descriptor,
                )
            )
        # Only descriptors re-validated this refresh survive: anything older
        # has expired out of the window or sits too close to an edge.
        self._descriptor_cache = fresh_cache
        features.sort(key=lambda f: (f.position, f.sigma))
        return tuple(features)

    # ------------------------------------------------------------------ #
    # Snapshot access
    # ------------------------------------------------------------------ #
    def features(self) -> Tuple[SalientFeature, ...]:
        """The snapshot features, positions relative to the snapshot window."""
        return self._features

    def features_absolute(self) -> Tuple[SalientFeature, ...]:
        """The snapshot features with positions in absolute stream coordinates."""
        if self._snapshot_start is None:
            return ()
        offset = float(self._snapshot_start)
        return tuple(
            replace(
                f,
                position=f.position + offset,
                scope_start=f.scope_start + offset,
                scope_end=f.scope_end + offset,
            )
            for f in self._features
        )
