"""Online subsequence sDTW monitoring over unbounded streams.

The streaming subsystem operationalises the paper's amortisation argument
(Section 3.4) in an online setting: salient features, lower-bound
envelopes and DP state are computed once and *carried* across ticks, so
monitoring cost per sample is independent of how much stream has already
been observed.

Components
----------
:class:`StreamBuffer` / :class:`SlidingExtrema`
    O(1)-append ring storage with zero-copy trailing windows and
    monotonic-deque window extrema.
:class:`IncrementalExtractor`
    Maintains the DoG scale space (Section 3.1.2) and salient features of
    the trailing window incrementally — bit-identical to batch
    re-extraction, at a fraction of the convolution work.
:class:`SpringMatcher`
    SPRING-style subsequence DTW: one carried DP column reports
    variable-length, non-overlapping match intervals under a threshold.
:class:`SlidingWindowMatcher`
    Fixed-window constrained DTW under any of the paper's constraint
    families (Sections 3.3.1–3.3.3) behind the LB_Kim / LB_Keogh /
    early-abandon cascade.
:class:`StreamMonitor`
    Multiplexes many patterns over many streams and keeps per-pattern
    :class:`StreamStats`.
:mod:`repro.streaming.offline`
    Per-tick recompute reference scans (equivalence oracles and naive
    benchmark baselines).
"""

from .buffer import SlidingExtrema, StreamBuffer
from .incremental import ExtractorStats, IncrementalExtractor
from .monitor import StreamMonitor
from .offline import naive_sliding_profile, naive_sliding_scan, naive_spring_scan
from .subsequence import (
    MatchSuppressor,
    SlidingWindowMatcher,
    SpringMatcher,
    StreamMatch,
    StreamStats,
)

__all__ = [
    "ExtractorStats",
    "IncrementalExtractor",
    "MatchSuppressor",
    "SlidingExtrema",
    "SlidingWindowMatcher",
    "SpringMatcher",
    "StreamBuffer",
    "StreamMatch",
    "StreamMonitor",
    "StreamStats",
    "naive_sliding_profile",
    "naive_sliding_scan",
    "naive_spring_scan",
]
