"""StreamMonitor: multiplexed online pattern monitoring over many streams.

This is the streaming subsystem's front door: register any number of
unbounded streams and query patterns, push samples, and collect
:class:`~repro.streaming.subsequence.StreamMatch` reports.  Per
(stream, pattern) pair the monitor instantiates either a
:class:`~repro.streaming.subsequence.SpringMatcher` (variable-length
subsequence matches, SPRING semantics) or a
:class:`~repro.streaming.subsequence.SlidingWindowMatcher` (fixed-length
windows under any of the paper's constraint families, guarded by the
PR 1 lower-bound cascade), shares one :class:`StreamBuffer` per stream
across all its matchers, and keeps per-pattern
:class:`~repro.streaming.subsequence.StreamStats`.

The design mirrors the paper's cost split (Section 3.4): everything that
depends only on the pattern (salient features, LB envelopes, Kim
extrema) is computed once at registration; per-tick work is bounds first,
dynamic programming only when a bound fails to prune.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series
from ..core.bands import parse_constraint_spec
from ..core.config import SDTWConfig
from ..exceptions import ValidationError
from .buffer import StreamBuffer
from .incremental import IncrementalExtractor
from .subsequence import (
    SlidingWindowMatcher,
    SpringMatcher,
    StreamMatch,
    StreamStats,
)

_MODES = ("spring", "sliding")


class StreamMonitor:
    """Monitor unbounded streams for registered query patterns under sDTW.

    Parameters
    ----------
    config:
        sDTW configuration shared by all sliding matchers (band widths,
        pointwise distance, scale-space/descriptor settings for adaptive
        constraints).
    prune:
        Master switch for the LB_Kim / LB_Keogh stages of sliding
        matchers; pruning is exact (bounds are admissible), so disabling
        it only changes speed, never which matches are reported.
    early_abandon:
        Whether sliding matchers stop the DP as soon as a whole row
        exceeds the threshold.
    buffer_margin:
        Extra ring-buffer capacity beyond the longest registered pattern.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.streaming import StreamMonitor
    >>> monitor = StreamMonitor()
    >>> monitor.add_stream("sensor")
    'sensor'
    >>> pattern = np.sin(np.linspace(0, 6.28, 32))
    >>> monitor.add_pattern(pattern, name="sine", threshold=2.0)
    'sine'
    >>> hits = monitor.extend("sensor", np.concatenate([np.zeros(10), pattern]))
    """

    def __init__(
        self,
        config: Optional[SDTWConfig] = None,
        *,
        prune: bool = True,
        early_abandon: bool = True,
        buffer_margin: int = 64,
    ) -> None:
        self.config = config if config is not None else SDTWConfig()
        self.prune = bool(prune)
        self.early_abandon = bool(early_abandon)
        self.buffer_margin = int(buffer_margin)
        self._buffers: Dict[str, StreamBuffer] = {}
        self._patterns: Dict[str, dict] = {}
        # (stream, pattern) -> matcher
        self._matchers: Dict[Tuple[str, str], object] = {}
        # Adaptive-constraint matchers of the same window length on the
        # same stream share one incremental extractor (observe() is
        # idempotent within a tick), so the scale-space maintenance is
        # paid once per stream, not once per pattern.
        self._extractors: Dict[Tuple[str, int, Optional[int]], IncrementalExtractor] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add_stream(self, name: Optional[str] = None, *, capacity: Optional[int] = None) -> str:
        """Register a stream; returns its name."""
        if name is None:
            counter = len(self._buffers)
            name = f"stream-{counter:03d}"
            # Removals make len() non-monotone; skip surviving names.
            while name in self._buffers:
                counter += 1
                name = f"stream-{counter:03d}"
        name = str(name)
        if name in self._buffers:
            raise ValidationError(f"stream {name!r} is already registered")
        if capacity is None:
            longest = max(
                (p["values"].size for p in self._patterns.values()), default=0
            )
            # Generous floor so patterns registered after the stream still
            # fit; truly long patterns need an explicit capacity.
            capacity = max(longest + self.buffer_margin, 512)
        self._buffers[name] = StreamBuffer(capacity)
        for pattern_name in self._patterns:
            self._attach(name, pattern_name)
        return name

    def add_pattern(
        self,
        values: Union[Sequence[float], np.ndarray],
        *,
        threshold: float,
        name: Optional[str] = None,
        mode: str = "spring",
        constraint: str = "fc,fw",
        streams: Optional[Sequence[str]] = None,
        extractor_hop: Optional[int] = None,
    ) -> str:
        """Register a query pattern; returns its name.

        Parameters
        ----------
        values:
            The pattern series.
        threshold:
            Match threshold ε (subsequences at distance ``<= ε`` match).
        name:
            Pattern label (auto-generated when omitted).
        mode:
            ``"spring"`` for SPRING variable-length subsequence matching,
            ``"sliding"`` for fixed-window constrained matching with the
            lower-bound cascade.
        constraint:
            Constraint family for sliding mode (``"full"``, ``"fc,fw"``,
            ``"itakura"``, or any sDTW adaptive family such as
            ``"ac,aw"``); ignored in spring mode.
        streams:
            Streams to monitor (default: all current and future streams
            monitor every pattern).
        extractor_hop:
            Feature-refresh cadence for adaptive constraints (see
            :class:`~repro.streaming.incremental.IncrementalExtractor`).
        """
        mode = str(mode).strip().lower()
        if mode not in _MODES:
            raise ValidationError(
                f"unknown monitoring mode {mode!r}; choose one of {_MODES}"
            )
        array = as_series(values, "pattern")
        if name is None:
            counter = len(self._patterns)
            name = f"pattern-{counter:03d}"
            # Removals make len() non-monotone; skip surviving names.
            while name in self._patterns:
                counter += 1
                name = f"pattern-{counter:03d}"
        name = str(name)
        if name in self._patterns:
            raise ValidationError(f"pattern {name!r} is already registered")
        self._patterns[name] = {
            "values": array,
            "threshold": float(threshold),
            "mode": mode,
            "constraint": constraint,
            "streams": tuple(streams) if streams is not None else None,
            "extractor_hop": extractor_hop,
        }
        for stream_name, buffer in self._buffers.items():
            if buffer.capacity < array.size:
                raise ValidationError(
                    f"stream {stream_name!r} retains only {buffer.capacity} "
                    f"samples but pattern {name!r} needs {array.size}; "
                    "register long patterns before streams or pass an "
                    "explicit capacity"
                )
            self._attach(stream_name, name)
        return name

    def _attach(self, stream: str, pattern: str) -> None:
        spec = self._patterns[pattern]
        if spec["streams"] is not None and stream not in spec["streams"]:
            return
        key = (stream, pattern)
        if key in self._matchers:
            return
        if spec["mode"] == "spring":
            matcher = SpringMatcher(
                spec["values"], spec["threshold"],
                distance=self.config.pointwise_distance, name=pattern,
            )
        else:
            matcher = SlidingWindowMatcher(
                spec["values"], spec["threshold"],
                constraint=spec["constraint"], config=self.config, name=pattern,
                use_lb_kim=self.prune, use_lb_keogh=self.prune,
                early_abandon=self.early_abandon,
                extractor_hop=spec["extractor_hop"],
                extractor=self._shared_extractor(stream, spec),
            )
        self._matchers[key] = matcher

    def _shared_extractor(self, stream: str, spec: dict) -> Optional[IncrementalExtractor]:
        """One extractor per (stream, window length, hop) for adaptive bands."""
        constraint = spec["constraint"]
        if isinstance(constraint, str) and constraint.strip().lower().replace(
            " ", ""
        ) in ("full", "itakura"):
            return None
        parsed = parse_constraint_spec(constraint)
        if parsed.core != "adaptive" and parsed.width != "adaptive":
            return None
        key = (stream, int(spec["values"].size), spec["extractor_hop"])
        if key not in self._extractors:
            self._extractors[key] = IncrementalExtractor(
                spec["values"].size, self.config, hop=spec["extractor_hop"]
            )
        return self._extractors[key]

    def remove_pattern(self, name: str) -> None:
        """Unregister a pattern and drop its matchers on every stream.

        Pending (unsettled) candidates of the removed matchers are
        discarded; call :meth:`finalize` first to flush them.
        """
        name = str(name)
        if name not in self._patterns:
            known = ", ".join(sorted(self._patterns)) or "(none)"
            raise ValidationError(
                f"unknown pattern {name!r}; registered: {known}"
            )
        del self._patterns[name]
        for key in [k for k in self._matchers if k[1] == name]:
            del self._matchers[key]

    def remove_stream(self, name: str) -> None:
        """Unregister a stream, dropping its buffer, matchers and extractors."""
        self._require_stream(name)
        del self._buffers[name]
        for key in [k for k in self._matchers if k[0] == name]:
            del self._matchers[key]
        for key in [k for k in self._extractors if k[0] == name]:
            del self._extractors[key]

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def _require_stream(self, stream: str) -> StreamBuffer:
        try:
            return self._buffers[stream]
        except KeyError as exc:
            known = ", ".join(sorted(self._buffers)) or "(none)"
            raise ValidationError(
                f"unknown stream {stream!r}; registered: {known}"
            ) from exc

    def push(self, stream: str, value: float) -> List[StreamMatch]:
        """Feed one sample into *stream*; returns matches settled this tick."""
        buffer = self._require_stream(stream)
        buffer.append(value)
        matches: List[StreamMatch] = []
        for (stream_name, _), matcher in self._matchers.items():
            if stream_name != stream:
                continue
            if isinstance(matcher, SpringMatcher):
                settled = matcher.update(float(value))
            else:
                settled = matcher.update(buffer)
            matches.extend(replace(m, stream=stream) for m in settled)
        return matches

    def extend(self, stream: str, values: Union[Sequence[float], np.ndarray]) -> List[StreamMatch]:
        """Feed many samples into *stream* in order; returns settled matches."""
        chunk = np.asarray(values, dtype=float)
        if chunk.ndim != 1:
            raise ValidationError(
                f"stream chunk must be one-dimensional, got shape {chunk.shape}"
            )
        matches: List[StreamMatch] = []
        for value in chunk:
            matches.extend(self.push(stream, value))
        return matches

    def finalize(self, stream: Optional[str] = None) -> List[StreamMatch]:
        """Flush pending candidates (end of stream / shutdown)."""
        matches: List[StreamMatch] = []
        for (stream_name, _), matcher in self._matchers.items():
            if stream is not None and stream_name != stream:
                continue
            matches.extend(
                replace(m, stream=stream_name) for m in matcher.finalize()
            )
        return matches

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def streams(self) -> List[str]:
        """Registered stream names, sorted."""
        return sorted(self._buffers)

    def patterns(self) -> List[str]:
        """Registered pattern names, sorted."""
        return sorted(self._patterns)

    def buffer(self, stream: str) -> StreamBuffer:
        """The ring buffer backing one stream."""
        return self._require_stream(stream)

    def matcher(self, stream: str, pattern: str):
        """The matcher instance monitoring one (stream, pattern) pair."""
        try:
            return self._matchers[(stream, pattern)]
        except KeyError as exc:
            raise ValidationError(
                f"pattern {pattern!r} is not monitoring stream {stream!r}"
            ) from exc

    def stats(self, pattern: str, stream: Optional[str] = None) -> StreamStats:
        """Work accounting for one pattern (summed over streams by default)."""
        records = [
            matcher.stats
            for (stream_name, pattern_name), matcher in self._matchers.items()
            if pattern_name == pattern
            and (stream is None or stream_name == stream)
        ]
        if not records:
            raise ValidationError(
                f"pattern {pattern!r} has no matchers"
                + (f" on stream {stream!r}" if stream is not None else "")
            )
        total = StreamStats()
        for record in records:
            for field_name in (
                "ticks", "evaluated", "pruned_lb_kim", "pruned_lb_keogh",
                "dp_runs", "dp_abandoned", "cells_filled", "total_cells",
                "matches",
            ):
                setattr(
                    total, field_name,
                    getattr(total, field_name) + getattr(record, field_name),
                )
        return total
