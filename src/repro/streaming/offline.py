"""Offline reference scans for the streaming matchers.

These implementations recompute everything from scratch at every tick —
exactly what the incremental matchers avoid — and exist for two reasons:

* **Correctness oracles.**  The equivalence tests assert that
  :class:`~repro.streaming.monitor.StreamMonitor` reports the same match
  intervals and distances as these scans on identical data; because the
  scans share no per-tick state with the online path (full window DP per
  tick, batch feature extraction per refresh), agreement certifies the
  carried DP columns, incremental envelopes and incremental features.
* **Naive baselines.**  ``benchmarks/bench_streaming.py`` measures the
  online monitor's throughput against these per-tick recompute scans —
  the streaming analogue of the paper's time-gain comparisons
  (Section 4.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_series
from ..core.bands import parse_constraint_spec
from ..core.config import SDTWConfig
from ..core.features import extract_salient_features
from ..dtw.banded import banded_dtw
from ..dtw.constraints import full_band, itakura_band, sakoe_chiba_band_fraction
from ..dtw.distances import PointwiseDistance, get_pointwise_distance
from .subsequence import (
    MatchSuppressor,
    StreamMatch,
    build_stream_band,
    shift_snapshot_features,
)


def naive_spring_scan(
    values: Union[Sequence[float], np.ndarray],
    pattern: Union[Sequence[float], np.ndarray],
    threshold: float,
    *,
    distance: Union[str, PointwiseDistance, None] = None,
    name: str = "pattern",
    stream: str = "",
) -> List[StreamMatch]:
    """SPRING semantics computed by per-tick full-prefix recomputation.

    For every tick the whole star-padded DP table over the prefix seen so
    far is rebuilt from scratch (O(t·m) per tick, O(n²·m) total) and the
    SPRING reporting discipline is replayed on top.  Kept deliberately
    naive — this is the "no carried state" strawman the streaming matcher
    is benchmarked against.
    """
    xs = as_series(values, "values")
    ys = as_series(pattern, "pattern")
    func = get_pointwise_distance(distance)
    m = ys.size
    threshold = float(threshold)

    best = np.inf
    best_start = best_end = -1
    # Report-time invalidations, recorded as (tick applied, blocked end).
    # Each rebuild must replay them at exactly the tick they happened:
    # killing earlier would reroute DP paths to alternative starts the
    # online matcher never considered (its cells were still alive then).
    kills: List[Tuple[int, int]] = []
    matches: List[StreamMatch] = []
    for t in range(xs.size):
        # Rebuild the whole DP over the prefix x[0..t] from scratch.
        d = np.full(m, np.inf)
        s = np.zeros(m, dtype=int)
        for u in range(t + 1):
            cost = func(xs[u], ys)
            d_new = np.empty(m)
            s_new = np.empty(m, dtype=int)
            for i in range(m):
                # Diagonal predecessor (u-1, i-1); the virtual star-padding
                # cell (distance 0, start u) for the first pattern row.
                if i == 0:
                    best_d, best_s = 0.0, u
                else:
                    best_d, best_s = d[i - 1], int(s[i - 1])
                # Vertical predecessor (u-1, i).
                if d[i] < best_d:
                    best_d, best_s = d[i], int(s[i])
                # Horizontal predecessor (u, i-1), same stream sample.
                if i > 0 and d_new[i - 1] < best_d:
                    best_d, best_s = d_new[i - 1], int(s_new[i - 1])
                d_new[i] = cost[i] + best_d
                s_new[i] = best_s
            for kill_tick, blocked_end in kills:
                if kill_tick == u:
                    d_new[s_new <= blocked_end] = np.inf
            d, s = d_new, s_new
        if best <= threshold:
            blocked = (d < best) & (s <= best_end)
            if not blocked.any():
                matches.append(
                    StreamMatch(pattern=name, stream=stream,
                                start=best_start, end=best_end, distance=best)
                )
                kills.append((t, best_end))
                d = np.where(s <= best_end, np.inf, d)
                best, best_start, best_end = np.inf, -1, -1
        if d[m - 1] <= threshold and d[m - 1] < best:
            best = float(d[m - 1])
            best_start = int(s[m - 1])
            best_end = t
    if best <= threshold:
        matches.append(
            StreamMatch(pattern=name, stream=stream,
                        start=best_start, end=best_end, distance=best)
        )
    return matches


def resolve_shared_band(
    constraint: str,
    window_length: int,
    pattern_length: int,
    config: SDTWConfig,
    itakura_max_slope: float = 2.0,
):
    """Resolve a constraint label to ``(spec, band)`` for streaming use.

    ``band`` is the shape-only constraint band shared by every window
    (``full`` / Sakoe–Chiba / Itakura) or ``None`` for the adaptive sDTW
    families, whose band depends on per-window salient features; ``spec``
    is ``None`` for the non-sDTW labels.
    """
    key = constraint.strip().lower().replace(" ", "")
    if key == "full":
        return None, full_band(window_length, pattern_length)
    if key == "itakura":
        return None, itakura_band(window_length, pattern_length, itakura_max_slope)
    spec = parse_constraint_spec(constraint)
    if spec.core == "adaptive" or spec.width == "adaptive":
        return spec, None
    return spec, sakoe_chiba_band_fraction(
        window_length, pattern_length, config.width_fraction
    )


def calibrate_thresholds(
    values: Union[Sequence[float], np.ndarray],
    patterns: Sequence[np.ndarray],
    truth: Sequence,
    config: Optional[SDTWConfig] = None,
    *,
    mode: str = "sliding",
    constraint: str = "fc,fw",
    slack: float = 1.3,
    itakura_max_slope: float = 2.0,
):
    """Per-pattern match thresholds from embedded ground-truth occurrences.

    The threshold for pattern *i* is ``slack`` times the largest distance
    between the pattern and its own embedded (warped, noisy) occurrences
    — guaranteeing the occurrences are matchable while keeping the
    background prunable.  Shared by the CLI and the streaming benchmark
    so their calibration policies cannot drift apart.
    """
    from ..core.sdtw import SDTW
    from ..dtw.full import dtw_distance

    xs = as_series(values, "values")
    config = config if config is not None else SDTWConfig()
    engine = SDTW(config)
    thresholds = {}
    for index, pattern in enumerate(patterns):
        ys = as_series(pattern, f"patterns[{index}]")
        distances = []
        for occ in truth:
            if occ.pattern_index != index:
                continue
            if mode == "spring":
                distances.append(
                    dtw_distance(ys, xs[occ.start: occ.end + 1])
                )
                continue
            m = ys.size
            start = min(occ.start, xs.size - m)
            window = xs[start: start + m]
            spec, band = resolve_shared_band(
                constraint, m, m, config, itakura_max_slope
            )
            if band is not None:
                distances.append(
                    banded_dtw(
                        window, ys, band, config.pointwise_distance,
                        return_path=False,
                    ).distance
                )
            else:
                distances.append(engine.distance(window, ys, spec).distance)
        thresholds[index] = slack * max(distances) if distances else 1.0
    return thresholds


def naive_sliding_profile(
    values: Union[Sequence[float], np.ndarray],
    pattern: Union[Sequence[float], np.ndarray],
    *,
    constraint: str = "fc,fw",
    config: Optional[SDTWConfig] = None,
    itakura_max_slope: float = 2.0,
    extractor_hop: Optional[int] = None,
) -> np.ndarray:
    """Per-tick window distances via full recomputation (no carried state).

    Entry ``t`` is the constrained DTW distance between the trailing
    window ``values[t-m+1 .. t]`` and the pattern (``inf`` for ticks
    before the first full window).  Every tick recomputes the band and the
    whole DP; adaptive constraints re-extract window features with the
    batch pipeline on the same hop cadence the online matcher uses.
    """
    xs = as_series(values, "values")
    ys = as_series(pattern, "pattern")
    config = config if config is not None else SDTWConfig()
    m = ys.size
    profile = np.full(xs.size, np.inf)

    spec, shared_band = resolve_shared_band(
        constraint, m, m, config, itakura_max_slope
    )
    pattern_features = None
    if shared_band is None:
        pattern_features = tuple(extract_salient_features(ys, config))

    if pattern_features is not None:
        # Mirror IncrementalExtractor's refresh cadence with batch
        # extraction: first refresh at the first full window, then every
        # hop ticks.
        from .incremental import IncrementalExtractor

        probe = IncrementalExtractor(m, config, hop=extractor_hop)
        hop = probe.hop
        snapshot_features: Sequence = ()
        snapshot_start = None

    for t in range(m - 1, xs.size):
        window = xs[t - m + 1: t + 1]
        if shared_band is not None:
            band = shared_band
        else:
            start = t - m + 1
            if snapshot_start is None or start - snapshot_start >= hop:
                snapshot_start = start
                snapshot_features = extract_salient_features(window, config)
            window_features = shift_snapshot_features(
                snapshot_features, start - snapshot_start, m
            )
            band = build_stream_band(
                spec, window_features, pattern_features, m, m, config
            )
        profile[t] = banded_dtw(
            window, ys, band, config.pointwise_distance, return_path=False
        ).distance
    return profile


def naive_sliding_scan(
    values: Union[Sequence[float], np.ndarray],
    pattern: Union[Sequence[float], np.ndarray],
    threshold: float,
    *,
    constraint: str = "fc,fw",
    config: Optional[SDTWConfig] = None,
    itakura_max_slope: float = 2.0,
    extractor_hop: Optional[int] = None,
    name: str = "pattern",
    stream: str = "",
) -> Tuple[List[StreamMatch], np.ndarray]:
    """Offline sliding-window sDTW scan: profile + suppressed matches.

    Returns the per-tick distance profile and the non-overlapping matches
    obtained by feeding it through the shared
    :class:`~repro.streaming.subsequence.MatchSuppressor` policy — the
    reference the online :class:`~repro.streaming.monitor.StreamMonitor`
    must reproduce exactly.
    """
    xs = as_series(values, "values")
    ys = as_series(pattern, "pattern")
    profile = naive_sliding_profile(
        xs, ys, constraint=constraint, config=config,
        itakura_max_slope=itakura_max_slope, extractor_hop=extractor_hop,
    )
    suppressor = MatchSuppressor(ys.size, float(threshold))
    matches: List[StreamMatch] = []

    def wrap(emitted):
        start, end, dist = emitted
        return StreamMatch(
            pattern=name, stream=stream, start=start, end=end, distance=dist
        )

    for t in range(xs.size):
        emitted = suppressor.observe(t, float(profile[t]))
        if emitted is not None:
            matches.append(wrap(emitted))
    final = suppressor.flush()
    if final is not None:
        matches.append(wrap(final))
    return matches, profile
