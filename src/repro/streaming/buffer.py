"""Bounded stream storage with O(1) append and zero-copy trailing windows.

The paper's salient-feature machinery assumes the whole series is in hand;
an online monitor only ever sees an unbounded stream one sample at a time.
:class:`StreamBuffer` is the storage substrate of the streaming subsystem
(the online counterpart of Section 3.4's "store the series once, reuse it
everywhere" amortisation argument): it retains the trailing ``capacity``
samples of a stream and serves *contiguous* windowed views of any trailing
length without copying.

The contiguity trick is the classic double-write ring: every sample is
written to two mirrored slots ``i % capacity`` and ``i % capacity +
capacity`` of a ``2 * capacity`` backing array, so every window of up to
``capacity`` trailing samples is a plain slice.  Appends stay O(1) (two
scalar writes) and windowed reads are zero-copy, which keeps the per-tick
cost of the matchers independent of stream length.

:class:`SlidingExtrema` maintains the min/max of the trailing window with
amortised O(1) updates (monotonic deques), which turns the engine's
LB_Kim stage-1 bound into a constant-time per-tick test.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Sequence, Tuple, Union

import numpy as np

from .._validation import check_int_at_least
from ..exceptions import ValidationError


class StreamBuffer:
    """Ring buffer over the trailing ``capacity`` samples of a stream.

    Parameters
    ----------
    capacity:
        Maximum number of trailing samples retained.  Windowed views of up
        to this length are always contiguous.

    Notes
    -----
    Sample indices are *absolute* stream positions (the first sample ever
    appended has index 0); the buffer forgets samples older than
    ``total - capacity`` but the indexing stays absolute, so matchers can
    report match intervals in stream coordinates.
    """

    def __init__(self, capacity: int) -> None:
        self._capacity = check_int_at_least(capacity, 1, "capacity")
        self._data = np.zeros(2 * self._capacity)
        self._total = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, value: float) -> int:
        """Append one sample; returns its absolute stream index.

        Non-finite samples are rejected: a single NaN would silently and
        permanently poison every carried DP column downstream.
        """
        value = float(value)
        if not math.isfinite(value):
            raise ValidationError(f"stream sample must be finite, got {value}")
        slot = self._total % self._capacity
        self._data[slot] = value
        self._data[slot + self._capacity] = value
        index = self._total
        self._total += 1
        return index

    def extend(self, values: Union[Sequence[float], np.ndarray]) -> int:
        """Append many samples at once; returns the last absolute index.

        Chunks larger than the capacity only write their trailing
        ``capacity`` samples (the rest would be immediately forgotten), so
        bulk replay of a long history stays O(capacity).
        """
        chunk = np.asarray(values, dtype=float)
        if chunk.ndim != 1:
            raise ValidationError(
                f"stream chunk must be one-dimensional, got shape {chunk.shape}"
            )
        if not np.all(np.isfinite(chunk)):
            raise ValidationError("stream chunk contains NaN or Inf values")
        if chunk.size == 0:
            return self._total - 1
        skipped = max(0, chunk.size - self._capacity)
        tail = chunk[skipped:]
        slots = (self._total + skipped + np.arange(tail.size)) % self._capacity
        self._data[slots] = tail
        self._data[slots + self._capacity] = tail
        self._total += chunk.size
        return self._total - 1

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Maximum number of retained samples."""
        return self._capacity

    @property
    def total(self) -> int:
        """Total number of samples ever appended."""
        return self._total

    @property
    def size(self) -> int:
        """Number of samples currently retained."""
        return min(self._total, self._capacity)

    @property
    def start_index(self) -> int:
        """Absolute index of the oldest retained sample."""
        return self._total - self.size

    def view(self, length: int = None) -> np.ndarray:
        """Zero-copy contiguous view of the trailing *length* samples.

        The returned array is a slice of the backing storage: it is only
        valid until the next append and must not be mutated.  With
        ``length=None`` the whole retained content is returned.
        """
        if length is None:
            length = self.size
        length = check_int_at_least(length, 1, "length")
        if length > self.size:
            raise ValidationError(
                f"requested window of {length} samples but only "
                f"{self.size} are retained"
            )
        end = (self._total - 1) % self._capacity + 1 + self._capacity
        return self._data[end - length: end]

    def window(self, length: int = None) -> np.ndarray:
        """Like :meth:`view` but returns an owned copy (safe to keep)."""
        return self.view(length).copy()

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> float:
        """Value at an *absolute* stream index (must still be retained)."""
        index = int(index)
        if not self.start_index <= index < self._total:
            raise ValidationError(
                f"absolute index {index} is outside the retained range "
                f"[{self.start_index}, {self._total})"
            )
        return float(self._data[index % self._capacity])


class SlidingExtrema:
    """Min and max of the trailing *window* samples in amortised O(1).

    The standard monotonic-deque construction: each deque holds (absolute
    index, value) pairs with values monotone from front to back, so the
    front is always the extremum of the current window.  This makes the
    LB_Kim quadruple of a sliding window maintainable at O(1) per tick
    instead of O(window) — the streaming analogue of the batch engine's
    precomputed :func:`repro.dtw.lower_bounds.kim_profile` cache.
    """

    def __init__(self, window: int) -> None:
        self._window = check_int_at_least(window, 1, "window")
        self._min: deque = deque()
        self._max: deque = deque()
        self._count = 0

    def push(self, value: float) -> None:
        """Observe the next stream sample."""
        value = float(value)
        index = self._count
        self._count += 1
        expire = index - self._window
        while self._min and self._min[0][0] <= expire:
            self._min.popleft()
        while self._max and self._max[0][0] <= expire:
            self._max.popleft()
        while self._min and self._min[-1][1] >= value:
            self._min.pop()
        while self._max and self._max[-1][1] <= value:
            self._max.pop()
        self._min.append((index, value))
        self._max.append((index, value))

    @property
    def ready(self) -> bool:
        """True once a full window has been observed."""
        return self._count >= self._window

    @property
    def minimum(self) -> float:
        """Minimum of the trailing window."""
        if not self._min:
            raise ValidationError("no samples observed yet")
        return self._min[0][1]

    @property
    def maximum(self) -> float:
        """Maximum of the trailing window."""
        if not self._max:
            raise ValidationError("no samples observed yet")
        return self._max[0][1]

    def extrema(self) -> Tuple[float, float]:
        """The (min, max) pair of the trailing window."""
        return self.minimum, self.maximum
