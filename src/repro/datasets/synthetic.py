"""Synthetic analogues of the paper's three evaluation data sets.

The UCR archive data used in the paper (Gun, Trace, 50Words) is not
redistributable and cannot be downloaded in this environment, so these
generators create collections with matching structural characteristics:

* ``gun``-like: length 150, 50 series, 2 classes.  Motion-capture-style
  curves dominated by one large, smooth plateau/peak per series (the paper
  notes Gun has the highest number of *large-scale* features).
* ``trace``-like: length 275, 100 series, 4 classes.  Transient signals
  with a class-specific mix of a step level change and an oscillatory
  burst at different positions.
* ``50words``-like: length 270, 450 series, 50 classes.  Word-profile-like
  curves built from many small bumps; classes differ in the bump layout,
  giving many fine-scale features and very few large ones (matching the
  paper's Table 2 observation).

Each class has a deterministic prototype; members are produced by applying
monotone local time warps, mild time shifts/stretches, amplitude scaling
and additive noise — the deformation model the paper assumes (order of
temporal features preserved, time skewed differently in different places).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .._validation import check_int_at_least
from ..exceptions import DatasetError
from ..utils.rng import derive_seed, rng_from_seed
from .base import Dataset, TimeSeries
from .generators import bell_curve, dip, plateau, sine_wave, step_edge
from .transforms import add_noise, amplitude_scale, local_time_warp, time_stretch


def _gun_prototype(length: int, class_label: int, rng: np.random.Generator) -> np.ndarray:
    """Prototype for a Gun-like class: one broad plateau with class-specific shape.

    Class 0 ("gun-draw"-like) has a wide flat-topped plateau with a small
    overshoot bump on the rising edge; class 1 ("point"-like) has a
    narrower, rounder peak without the overshoot and a slightly later
    onset.  Both are dominated by a single large-scale feature.
    """
    center = length * (0.48 if class_label == 0 else 0.55)
    if class_label == 0:
        base = plateau(length, start=center - length * 0.22,
                       end=center + length * 0.22, height=1.0,
                       ramp_width=length * 0.03)
        base += bell_curve(length, center - length * 0.20, length * 0.02, 0.12)
    else:
        base = bell_curve(length, center, length * 0.16, 1.0)
    # Broad secondary structure: a slow lead-in swell and a wide settling
    # hump after the main movement, mimicking the smooth arm motion of the
    # original Gun/Point recordings (large-scale features dominate).
    base += bell_curve(length, length * 0.12, length * 0.09, 0.18)
    base += bell_curve(length, length * 0.88, length * 0.08, 0.15)
    return base


def _trace_prototype(length: int, class_label: int, rng: np.random.Generator) -> np.ndarray:
    """Prototype for a Trace-like class: a level change plus an oscillatory burst.

    The four classes differ in whether the level change rises or falls and
    in where the oscillatory transient sits relative to it — the same kind
    of structure the original nuclear-instrumentation Trace data exhibits.
    """
    rising = class_label in (0, 1)
    early_burst = class_label in (0, 2)
    edge_pos = length * 0.55
    direction = 1.0 if rising else -1.0
    base = direction * step_edge(length, edge_pos, height=1.0,
                                 smoothness=length * 0.01)
    burst_center = length * (0.25 if early_burst else 0.78)
    burst_width = length * 0.06
    window = bell_curve(length, burst_center, burst_width, 1.0)
    oscillation = sine_wave(length, cycles=10.0, amplitude=0.35)
    base += window * oscillation
    base += bell_curve(length, burst_center, burst_width * 2.0, 0.25)
    return base


def _fiftywords_prototype(length: int, class_label: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Prototype for a 50Words-like class: many small bumps, few large ones.

    Each class gets a random (but class-seeded, hence deterministic) layout
    of 6–10 narrow bumps and dips of varying small widths across the
    series, so the collection contains many fine-scale salient features
    and almost no large-scale ones.
    """
    class_rng = rng_from_seed(derive_seed(1789, "fiftywords-proto", class_label))
    num_bumps = int(class_rng.integers(8, 14))
    base = np.zeros(length)
    positions = np.sort(class_rng.uniform(0.06, 0.94, size=num_bumps)) * length
    for k, pos in enumerate(positions):
        # Narrow bumps and dips of alternating prevalence: fine-scale
        # features dominate and only a handful of larger undulations remain
        # at coarse temporal scales (the 50Words profile of Table 2).
        width = class_rng.uniform(0.008, 0.022) * length
        height = class_rng.uniform(0.35, 0.9)
        if class_rng.uniform() < 0.35:
            base += dip(length, pos, width, height * 0.8)
        else:
            base += bell_curve(length, pos, width, height)
    return base


_PROTOTYPES = {
    "gun": _gun_prototype,
    "trace": _trace_prototype,
    "50words": _fiftywords_prototype,
}


def make_synthetic_dataset(
    name: str,
    length: int,
    num_series: int,
    num_classes: int,
    *,
    seed: int = 7,
    noise_std: float = 0.02,
    warp_strength: float = 0.25,
    warp_knots: int = 4,
    skew_strength: float = 0.0,
    stretch_range: float = 0.08,
    amplitude_range: float = 0.08,
    prototype_kind: Optional[str] = None,
) -> Dataset:
    """Generate a class-structured synthetic data set.

    Parameters
    ----------
    name:
        Data-set name; if it matches a known prototype family ("gun",
        "trace", "50words") that family's prototypes are used, otherwise
        the 50words-style generic bump prototypes are used.
    length:
        Length of every series.
    num_series:
        Total number of series; distributed as evenly as possible over the
        classes.
    num_classes:
        Number of classes.
    seed:
        Base seed; all randomness is derived from it deterministically.
    noise_std, warp_strength, warp_knots, stretch_range, amplitude_range:
        Deformation magnitudes applied to the class prototypes.
    skew_strength:
        Strength of an additional single-knot monotone warp that skews the
        whole series, moving the temporal features substantially earlier or
        later.  This models the "major shifts and skews" the paper
        attributes to the Gun and Trace data (where fixed-core bands fail)
        while the 50Words data keeps only minor deformations around the
        diagonal.
    prototype_kind:
        Explicit prototype family overriding the name-based choice.

    Returns
    -------
    Dataset
    """
    length = check_int_at_least(length, 8, "length")
    num_series = check_int_at_least(num_series, 1, "num_series")
    num_classes = check_int_at_least(num_classes, 1, "num_classes")
    if num_classes > num_series:
        raise DatasetError("cannot have more classes than series")

    kind = (prototype_kind or name).lower()
    prototype_fn = _PROTOTYPES.get(kind, _fiftywords_prototype)

    series: List[TimeSeries] = []
    per_class = [num_series // num_classes] * num_classes
    for extra in range(num_series % num_classes):
        per_class[extra] += 1

    proto_rng = rng_from_seed(derive_seed(seed, name, "prototypes"))
    prototypes = [prototype_fn(length, c, proto_rng) for c in range(num_classes)]

    for class_label, count in enumerate(per_class):
        for member in range(count):
            member_seed = derive_seed(seed, name, class_label, member)
            rng = rng_from_seed(member_seed)
            values = prototypes[class_label].copy()
            if skew_strength > 0.0:
                # A single-knot warp produces a global skew: the middle of
                # the series moves by up to skew_strength / 2 of its length.
                values = local_time_warp(values, rng, num_knots=1,
                                         strength=skew_strength)
            values = local_time_warp(values, rng, num_knots=warp_knots,
                                     strength=warp_strength)
            stretch = 1.0 + rng.uniform(-stretch_range, stretch_range)
            values = time_stretch(values, stretch, length=length)
            scale = 1.0 + rng.uniform(-amplitude_range, amplitude_range)
            values = amplitude_scale(values, scale)
            values = add_noise(values, rng, noise_std)
            series.append(
                TimeSeries(
                    values=values,
                    label=class_label,
                    identifier=f"{name}-{class_label:02d}-{member:03d}",
                )
            )
    dataset = Dataset(
        name=name,
        series=series,
        metadata={
            "synthetic": True,
            "seed": seed,
            "length": length,
            "num_series": num_series,
            "num_classes": num_classes,
            "prototype_kind": kind,
            "noise_std": noise_std,
            "warp_strength": warp_strength,
            "skew_strength": skew_strength,
        },
    )
    dataset.validate()
    return dataset


def make_gun_like(num_series: int = 50, length: int = 150, *, seed: int = 7,
                  noise_std: float = 0.02) -> Dataset:
    """Gun-like data set: 150-sample series, 2 classes (paper Table 1 row 1).

    Members of a class share one broad movement profile but are skewed
    substantially in time, reproducing the major shifts that make fixed
    Sakoe–Chiba bands inaccurate on the original Gun data.
    """
    return make_synthetic_dataset(
        "gun", length=length, num_series=num_series, num_classes=2, seed=seed,
        noise_std=noise_std, warp_strength=0.30, warp_knots=3,
        skew_strength=0.35,
    )


def make_trace_like(num_series: int = 100, length: int = 275, *, seed: int = 7,
                    noise_std: float = 0.02) -> Dataset:
    """Trace-like data set: 275-sample series, 4 classes (paper Table 1 row 2).

    The transient burst and the level change drift considerably between
    members of the same class (large skews), which is what makes intra-class
    distance estimation hard for fixed-core bands (paper Figure 15).
    """
    return make_synthetic_dataset(
        "trace", length=length, num_series=num_series, num_classes=4, seed=seed,
        noise_std=noise_std, warp_strength=0.25, warp_knots=4,
        skew_strength=0.45,
    )


def make_fiftywords_like(num_series: int = 450, length: int = 270, *, seed: int = 7,
                         noise_std: float = 0.015) -> Dataset:
    """50Words-like data set: 270-sample series, 50 classes (paper Table 1 row 3).

    When fewer than 50 series are requested (reduced variants for tests and
    quick experiments) the number of classes is capped at the series count so
    every class keeps at least one member.

    Unlike the Gun- and Trace-like collections, members only undergo minor
    deformations around the diagonal (no large skews), matching the paper's
    characterisation of the 50Words data.
    """
    return make_synthetic_dataset(
        "50words", length=length, num_series=num_series,
        num_classes=min(50, num_series), seed=seed,
        noise_std=noise_std, warp_strength=0.15, warp_knots=6,
        skew_strength=0.06,
    )
