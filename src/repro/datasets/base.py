"""Core data structures for labelled time-series collections."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .._validation import as_series
from ..exceptions import DatasetError


@dataclass(frozen=True)
class TimeSeries:
    """A single labelled time series.

    Attributes
    ----------
    values:
        The sample values (1-D float array).
    label:
        Class label (integer), or ``None`` for unlabelled data.
    identifier:
        A stable identifier within its data set (e.g. ``"gun-017"``).
    """

    values: np.ndarray
    label: Optional[int] = None
    identifier: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", as_series(self.values, "values"))

    def __len__(self) -> int:
        return int(self.values.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    @property
    def length(self) -> int:
        """Number of samples."""
        return int(self.values.size)


@dataclass
class Dataset:
    """A named collection of labelled time series.

    Attributes
    ----------
    name:
        Data-set name (e.g. ``"gun"``).
    series:
        The member series.
    metadata:
        Free-form provenance information (generator parameters, seed, …).
    """

    name: str
    series: List[TimeSeries] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self.series)

    def __getitem__(self, index: int) -> TimeSeries:
        return self.series[index]

    @property
    def labels(self) -> List[Optional[int]]:
        """Labels of all member series, in order."""
        return [ts.label for ts in self.series]

    @property
    def num_classes(self) -> int:
        """Number of distinct (non-None) class labels."""
        return len({ts.label for ts in self.series if ts.label is not None})

    @property
    def lengths(self) -> List[int]:
        """Lengths of all member series."""
        return [ts.length for ts in self.series]

    def values_list(self) -> List[np.ndarray]:
        """The raw value arrays of all member series, in order."""
        return [ts.values for ts in self.series]

    def by_class(self) -> Dict[int, List[TimeSeries]]:
        """Group the member series by class label (unlabelled series skipped)."""
        groups: Dict[int, List[TimeSeries]] = {}
        for ts in self.series:
            if ts.label is None:
                continue
            groups.setdefault(ts.label, []).append(ts)
        return groups

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Dataset":
        """A new data set containing only the series at *indices*."""
        picked = [self.series[i] for i in indices]
        return Dataset(
            name=name or f"{self.name}-subset",
            series=picked,
            metadata=dict(self.metadata, parent=self.name),
        )

    def sample(self, count: int, rng: np.random.Generator,
               name: Optional[str] = None) -> "Dataset":
        """A random subset of *count* series (without replacement)."""
        if count > len(self.series):
            raise DatasetError(
                f"cannot sample {count} series from a data set of {len(self.series)}"
            )
        indices = rng.choice(len(self.series), size=count, replace=False)
        return self.subset(sorted(int(i) for i in indices), name=name)

    def validate(self) -> None:
        """Raise :class:`DatasetError` if the data set is empty or inconsistent."""
        if not self.series:
            raise DatasetError(f"data set {self.name!r} contains no series")
        for ts in self.series:
            if ts.length < 2:
                raise DatasetError(
                    f"series {ts.identifier!r} in {self.name!r} is too short"
                )

    def summary(self) -> Dict[str, object]:
        """Summary statistics matching the columns of the paper's Table 1."""
        lengths = self.lengths
        return {
            "name": self.name,
            "length": int(np.median(lengths)) if lengths else 0,
            "num_series": len(self.series),
            "num_classes": self.num_classes,
        }
