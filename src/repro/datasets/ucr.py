"""Reading and writing the UCR time-series archive text format.

The UCR archive stores one series per line: the class label first, then the
sample values, separated by commas (newer releases) or whitespace (older
releases).  Providing this reader means the synthetic substitutes used in
this reproduction can be swapped for the real Gun / Trace / 50Words files
without touching any other code.
"""

from __future__ import annotations

import os
from typing import List, Optional, Union

import numpy as np

from ..exceptions import DatasetError
from .base import Dataset, TimeSeries


def _parse_line(line: str, line_number: int, delimiter: Optional[str]) -> Optional[TimeSeries]:
    stripped = line.strip()
    if not stripped:
        return None
    if delimiter is None:
        delimiter = "," if "," in stripped else None  # None => whitespace split
    tokens = stripped.split(delimiter) if delimiter else stripped.split()
    tokens = [t for t in tokens if t]
    if len(tokens) < 2:
        raise DatasetError(
            f"line {line_number}: expected a label and at least one value"
        )
    try:
        label = int(float(tokens[0]))
        values = np.asarray([float(t) for t in tokens[1:]], dtype=float)
    except ValueError as exc:
        raise DatasetError(f"line {line_number}: could not parse numbers") from exc
    return TimeSeries(values=values, label=label, identifier=f"line-{line_number}")


def read_ucr_file(
    path: Union[str, os.PathLike],
    name: Optional[str] = None,
    delimiter: Optional[str] = None,
) -> Dataset:
    """Read a UCR-format file into a :class:`Dataset`.

    Parameters
    ----------
    path:
        Path to the text file (e.g. ``Gun_Point_TRAIN``).
    name:
        Data-set name; defaults to the file's base name.
    delimiter:
        Field delimiter; auto-detected (comma vs. whitespace) when omitted.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise DatasetError(f"UCR file not found: {path}")
    series: List[TimeSeries] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            parsed = _parse_line(line, line_number, delimiter)
            if parsed is not None:
                series.append(parsed)
    if not series:
        raise DatasetError(f"UCR file {path} contains no series")
    dataset = Dataset(
        name=name or os.path.splitext(os.path.basename(path))[0],
        series=series,
        metadata={"source_path": path, "synthetic": False},
    )
    dataset.validate()
    return dataset


def write_ucr_file(
    dataset: Dataset,
    path: Union[str, os.PathLike],
    delimiter: str = ",",
    float_format: str = "%.6f",
) -> None:
    """Write a :class:`Dataset` in UCR text format (label first, then values)."""
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        for ts in dataset:
            label = ts.label if ts.label is not None else 0
            values = delimiter.join(float_format % v for v in ts.values)
            handle.write(f"{label}{delimiter}{values}\n")
