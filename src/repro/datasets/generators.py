"""Shape primitives for synthetic time-series generation.

These parametric building blocks (bells, dips, ramps, steps, plateaus,
sinusoids) are composed by :mod:`repro.datasets.synthetic` into
class-structured series whose salient-feature profiles mimic the three UCR
data sets the paper evaluates on.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_int_at_least, check_positive
from ..exceptions import ValidationError


def _positions(length: int) -> np.ndarray:
    return np.arange(check_int_at_least(length, 1, "length"), dtype=float)


def flat_segment(length: int, value: float = 0.0) -> np.ndarray:
    """A constant segment of the given length and value."""
    return np.full(check_int_at_least(length, 1, "length"), float(value))


def bell_curve(length: int, center: float, width: float, height: float = 1.0) -> np.ndarray:
    """A Gaussian bump of the given centre, width (σ) and height."""
    width = check_positive(width, "width")
    positions = _positions(length)
    return height * np.exp(-((positions - center) ** 2) / (2.0 * width * width))


def dip(length: int, center: float, width: float, depth: float = 1.0) -> np.ndarray:
    """A downward Gaussian dip (negative bump)."""
    return -bell_curve(length, center, width, depth)


def plateau(length: int, start: float, end: float, height: float = 1.0,
            ramp_width: float = 3.0) -> np.ndarray:
    """A smooth plateau rising at *start* and falling at *end*.

    Built from two logistic edges so the plateau has continuous gradients
    (sharp discontinuities would create artificial fine-scale keypoints at
    every plateau corner).
    """
    if end <= start:
        raise ValidationError("plateau end must follow its start")
    ramp_width = check_positive(ramp_width, "ramp_width")
    positions = _positions(length)
    rise = 1.0 / (1.0 + np.exp(-(positions - start) / ramp_width))
    fall = 1.0 / (1.0 + np.exp(-(positions - end) / ramp_width))
    return height * (rise - fall)


def ramp(length: int, start: float, end: float, height: float = 1.0) -> np.ndarray:
    """A linear ramp from 0 to *height* between positions *start* and *end*."""
    if end <= start:
        raise ValidationError("ramp end must follow its start")
    positions = _positions(length)
    values = (positions - start) / (end - start)
    return height * np.clip(values, 0.0, 1.0)


def step_edge(length: int, position: float, height: float = 1.0,
              smoothness: float = 1.0) -> np.ndarray:
    """A smoothed step edge at *position* with the given height."""
    smoothness = check_positive(smoothness, "smoothness")
    positions = _positions(length)
    return height / (1.0 + np.exp(-(positions - position) / smoothness))


def sine_wave(length: int, cycles: float, amplitude: float = 1.0,
              phase: float = 0.0) -> np.ndarray:
    """A sinusoid with the given number of cycles over the series."""
    positions = _positions(length)
    if length > 1:
        positions = positions / (length - 1)
    return amplitude * np.sin(2.0 * np.pi * cycles * positions + phase)


def random_walk(length: int, rng: np.random.Generator, step_std: float = 0.05) -> np.ndarray:
    """A cumulative-sum random walk (used as slow background drift)."""
    step_std = check_positive(step_std, "step_std")
    steps = rng.normal(0.0, step_std, size=check_int_at_least(length, 1, "length"))
    return np.cumsum(steps)
