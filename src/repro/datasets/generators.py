"""Shape primitives and stream generators for synthetic time series.

The parametric building blocks (bells, dips, ramps, steps, plateaus,
sinusoids) are composed by :mod:`repro.datasets.synthetic` into
class-structured series whose salient-feature profiles mimic the three UCR
data sets the paper evaluates on.

The stream generators (:func:`make_stream_patterns`,
:func:`embed_pattern_stream`) produce *unbounded-style* series for the
streaming subsystem: a noisy drifting background with time-warped,
amplitude-perturbed occurrences of query patterns embedded at known
positions, so online monitors can be scored against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_int_at_least, check_positive
from ..exceptions import ValidationError
from ..utils.preprocessing import resample_linear


def _positions(length: int) -> np.ndarray:
    return np.arange(check_int_at_least(length, 1, "length"), dtype=float)


def flat_segment(length: int, value: float = 0.0) -> np.ndarray:
    """A constant segment of the given length and value."""
    return np.full(check_int_at_least(length, 1, "length"), float(value))


def bell_curve(length: int, center: float, width: float, height: float = 1.0) -> np.ndarray:
    """A Gaussian bump of the given centre, width (σ) and height."""
    width = check_positive(width, "width")
    positions = _positions(length)
    return height * np.exp(-((positions - center) ** 2) / (2.0 * width * width))


def dip(length: int, center: float, width: float, depth: float = 1.0) -> np.ndarray:
    """A downward Gaussian dip (negative bump)."""
    return -bell_curve(length, center, width, depth)


def plateau(length: int, start: float, end: float, height: float = 1.0,
            ramp_width: float = 3.0) -> np.ndarray:
    """A smooth plateau rising at *start* and falling at *end*.

    Built from two logistic edges so the plateau has continuous gradients
    (sharp discontinuities would create artificial fine-scale keypoints at
    every plateau corner).
    """
    if end <= start:
        raise ValidationError("plateau end must follow its start")
    ramp_width = check_positive(ramp_width, "ramp_width")
    positions = _positions(length)
    rise = 1.0 / (1.0 + np.exp(-(positions - start) / ramp_width))
    fall = 1.0 / (1.0 + np.exp(-(positions - end) / ramp_width))
    return height * (rise - fall)


def ramp(length: int, start: float, end: float, height: float = 1.0) -> np.ndarray:
    """A linear ramp from 0 to *height* between positions *start* and *end*."""
    if end <= start:
        raise ValidationError("ramp end must follow its start")
    positions = _positions(length)
    values = (positions - start) / (end - start)
    return height * np.clip(values, 0.0, 1.0)


def step_edge(length: int, position: float, height: float = 1.0,
              smoothness: float = 1.0) -> np.ndarray:
    """A smoothed step edge at *position* with the given height."""
    smoothness = check_positive(smoothness, "smoothness")
    positions = _positions(length)
    return height / (1.0 + np.exp(-(positions - position) / smoothness))


def sine_wave(length: int, cycles: float, amplitude: float = 1.0,
              phase: float = 0.0) -> np.ndarray:
    """A sinusoid with the given number of cycles over the series."""
    positions = _positions(length)
    if length > 1:
        positions = positions / (length - 1)
    return amplitude * np.sin(2.0 * np.pi * cycles * positions + phase)


def random_walk(length: int, rng: np.random.Generator, step_std: float = 0.05) -> np.ndarray:
    """A cumulative-sum random walk (used as slow background drift)."""
    step_std = check_positive(step_std, "step_std")
    steps = rng.normal(0.0, step_std, size=check_int_at_least(length, 1, "length"))
    return np.cumsum(steps)


# --------------------------------------------------------------------- #
# Stream generation for the online monitoring subsystem
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamOccurrence:
    """Ground truth for one embedded pattern occurrence.

    ``start`` / ``end`` are inclusive absolute stream indices of the
    (possibly time-warped) occurrence.
    """

    pattern_index: int
    start: int
    end: int

    @property
    def length(self) -> int:
        """Number of stream samples the occurrence covers."""
        return self.end - self.start + 1

    def hit_by(self, match_start: int, match_end: int) -> bool:
        """True when a reported match interval overlaps this occurrence."""
        return self.start <= match_end and match_start <= self.end


def make_stream_patterns(
    num_patterns: int,
    length: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Generate *num_patterns* structurally distinct query patterns.

    Each pattern combines a different subset of the shape primitives
    (bell, dip, plateau, sinusoid, ramp) so their salient-feature profiles
    — and hence their sDTW distances — are well separated, mirroring the
    class structure of the synthetic data sets.
    """
    num_patterns = check_int_at_least(num_patterns, 1, "num_patterns")
    length = check_int_at_least(length, 8, "length")
    patterns: List[np.ndarray] = []
    for index in range(num_patterns):
        kind = index % 4
        jitter = 1.0 + 0.1 * float(rng.uniform(-1.0, 1.0))
        if kind == 0:
            values = (
                bell_curve(length, length * 0.3, length * 0.08, 1.2 * jitter)
                + dip(length, length * 0.7, length * 0.07, 0.9 * jitter)
            )
        elif kind == 1:
            values = (
                plateau(length, length * 0.2, length * 0.6, 1.0 * jitter,
                        ramp_width=max(2.0, length * 0.04))
                + bell_curve(length, length * 0.8, length * 0.05, 0.7 * jitter)
            )
        elif kind == 2:
            values = sine_wave(length, 1.5 * jitter, 0.9) + ramp(
                length, length * 0.1, length * 0.9, 0.8 * jitter
            )
        else:
            values = (
                step_edge(length, length * 0.35, 1.1 * jitter,
                          smoothness=max(1.0, length * 0.03))
                + dip(length, length * 0.65, length * 0.06, 1.0 * jitter)
                - step_edge(length, length * 0.9, 0.8 * jitter,
                            smoothness=max(1.0, length * 0.03))
            )
        patterns.append(values)
    return patterns


def warp_occurrence(
    pattern: np.ndarray,
    rng: np.random.Generator,
    *,
    time_scale_range: Tuple[float, float] = (0.85, 1.2),
    amplitude_range: Tuple[float, float] = (0.9, 1.1),
    noise_std: float = 0.02,
) -> np.ndarray:
    """One noisy, time-stretched, amplitude-scaled instance of a pattern.

    This is the perturbation model the online matchers are expected to be
    robust to: global tempo change (handled by DTW warping), amplitude
    scaling and additive noise.
    """
    scale = float(rng.uniform(*time_scale_range))
    new_length = max(4, int(round(pattern.size * scale)))
    warped = resample_linear(pattern, new_length)
    warped = warped * float(rng.uniform(*amplitude_range))
    if noise_std > 0:
        warped = warped + rng.normal(0.0, noise_std, size=warped.size)
    return warped


def embed_pattern_stream(
    length: int,
    patterns: Sequence[np.ndarray],
    rng: np.random.Generator,
    *,
    occurrences_per_pattern: int = 3,
    noise_std: float = 0.15,
    drift_std: float = 0.01,
    time_scale_range: Tuple[float, float] = (0.85, 1.2),
    amplitude_range: Tuple[float, float] = (0.9, 1.1),
    min_gap: Optional[int] = None,
) -> Tuple[np.ndarray, List[StreamOccurrence]]:
    """Build a stream with known pattern occurrences embedded in noise.

    Returns
    -------
    (stream, truth):
        The stream values and the ground-truth occurrence list (sorted by
        start position).  Occurrences never overlap each other.

    Raises
    ------
    ValidationError
        If the requested occurrences cannot be placed without overlap.
    """
    length = check_int_at_least(length, 16, "length")
    if not patterns:
        raise ValidationError("embed_pattern_stream needs at least one pattern")
    occurrences_per_pattern = check_int_at_least(
        occurrences_per_pattern, 0, "occurrences_per_pattern"
    )
    background = rng.normal(0.0, noise_std, size=length)
    if drift_std > 0:
        background = background + random_walk(length, rng, drift_std)
    stream = background

    max_length = max(int(round(p.size * time_scale_range[1])) + 1 for p in patterns)
    if min_gap is None:
        min_gap = max(4, max_length // 4)

    truth: List[StreamOccurrence] = []
    taken: List[Tuple[int, int]] = []
    for pattern_index, pattern in enumerate(patterns):
        for _ in range(occurrences_per_pattern):
            instance = warp_occurrence(
                pattern, rng,
                time_scale_range=time_scale_range,
                amplitude_range=amplitude_range,
                noise_std=noise_std * 0.2,
            )
            placed = False
            for _attempt in range(200):
                start = int(rng.integers(0, max(1, length - instance.size)))
                end = start + instance.size - 1
                if all(
                    end + min_gap < lo or start - min_gap > hi
                    for lo, hi in taken
                ):
                    placed = True
                    break
            if not placed:
                raise ValidationError(
                    "could not place all pattern occurrences without overlap; "
                    "lower occurrences_per_pattern or lengthen the stream"
                )
            stream[start: end + 1] = instance + stream[start: end + 1] * 0.1
            taken.append((start, end))
            truth.append(
                StreamOccurrence(pattern_index=pattern_index, start=start, end=end)
            )
    truth.sort(key=lambda occ: occ.start)
    return stream, truth
