"""Data-set substrate: synthetic UCR-style collections and UCR file I/O.

The paper evaluates on three UCR archive data sets (Gun, Trace, 50Words).
The archive is not redistributable and this environment has no network
access, so :mod:`repro.datasets.synthetic` generates class-structured
collections with the same lengths, sizes, class counts and salient-feature
density profiles; :mod:`repro.datasets.ucr` reads/writes the UCR text
format so real archive files can be dropped in unchanged.
"""

from .base import Dataset, TimeSeries
from .generators import (
    StreamOccurrence,
    bell_curve,
    dip,
    embed_pattern_stream,
    flat_segment,
    make_stream_patterns,
    plateau,
    ramp,
    sine_wave,
    step_edge,
    warp_occurrence,
)
from .registry import available_datasets, load_dataset
from .synthetic import (
    make_fiftywords_like,
    make_gun_like,
    make_synthetic_dataset,
    make_trace_like,
)
from .transforms import (
    add_noise,
    amplitude_scale,
    baseline_shift,
    local_time_warp,
    time_shift,
    time_stretch,
)
from .ucr import read_ucr_file, write_ucr_file

__all__ = [
    "Dataset",
    "StreamOccurrence",
    "TimeSeries",
    "add_noise",
    "amplitude_scale",
    "available_datasets",
    "baseline_shift",
    "bell_curve",
    "dip",
    "embed_pattern_stream",
    "flat_segment",
    "load_dataset",
    "make_stream_patterns",
    "local_time_warp",
    "make_fiftywords_like",
    "make_gun_like",
    "make_synthetic_dataset",
    "make_trace_like",
    "plateau",
    "ramp",
    "read_ucr_file",
    "sine_wave",
    "step_edge",
    "time_shift",
    "time_stretch",
    "warp_occurrence",
    "write_ucr_file",
]
