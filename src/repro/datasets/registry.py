"""Named data-set registry used by the experiment harness and the CLI.

The registry exposes the three paper data sets (synthetic analogues) under
their paper names plus reduced "small" variants that keep experiment and
test runtimes manageable; arbitrary UCR files can also be loaded through
:func:`load_dataset` by passing a file path.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List

from ..exceptions import DatasetError
from .base import Dataset
from .synthetic import make_fiftywords_like, make_gun_like, make_trace_like
from .ucr import read_ucr_file

_BUILDERS: Dict[str, Callable[..., Dataset]] = {
    # Paper-scale collections (Table 1 sizes).
    "gun": lambda seed=7: make_gun_like(seed=seed),
    "trace": lambda seed=7: make_trace_like(seed=seed),
    "50words": lambda seed=7: make_fiftywords_like(seed=seed),
    # Reduced variants for fast experimentation, unit tests and CI.
    "gun-small": lambda seed=7: make_gun_like(num_series=16, seed=seed),
    "trace-small": lambda seed=7: make_trace_like(num_series=20, seed=seed),
    "50words-small": lambda seed=7: make_fiftywords_like(num_series=60, seed=seed),
    "50words-tiny": lambda seed=7: make_fiftywords_like(num_series=30, seed=seed),
}


def available_datasets() -> List[str]:
    """Names of the registered data sets."""
    return sorted(_BUILDERS)


def register_dataset(name: str, builder: Callable[..., Dataset]) -> None:
    """Register a custom data-set builder under *name* (overwrites existing)."""
    _BUILDERS[name.lower()] = builder


def load_dataset(name_or_path: str, seed: int = 7) -> Dataset:
    """Load a registered data set by name, or a UCR file by path.

    Parameters
    ----------
    name_or_path:
        Registered name (see :func:`available_datasets`) or a path to a
        UCR-format text file.
    seed:
        Seed forwarded to synthetic builders (ignored for files).
    """
    key = name_or_path.lower()
    if key in _BUILDERS:
        return _BUILDERS[key](seed=seed)
    if os.path.exists(name_or_path):
        return read_ucr_file(name_or_path)
    known = ", ".join(available_datasets())
    raise DatasetError(
        f"unknown data set {name_or_path!r}; known names: {known} "
        "(or pass a path to a UCR-format file)"
    )
