"""Benchmark of the noise-robustness extension study.

Sweeps the additive-noise level and records the distance error of the
fixed 10% band vs. the adaptive core & adaptive width constraint.  The
robustness claim of Section 3.1.2 translates into the adaptive constraint
staying well ahead of (or at least comparable to) the fixed band as the
noise grows.
"""

from __future__ import annotations

from _bench_utils import save_result

from repro.experiments import run_noise_robustness


def test_noise_robustness_sweep(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_noise_robustness(num_series=8, length=120,
                                     noise_levels=(0.0, 0.05, 0.10)),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, "noise_robustness", result)

    by_key = {(row[0], row[1]): row for row in result.rows}
    benchmark.extra_info["acaw_error_by_noise"] = {
        str(noise): round(by_key[(noise, "(ac,aw)")][2], 4)
        for noise in (0.0, 0.05, 0.10)
    }
    # At the highest noise level the adaptive constraint must still not be
    # substantially worse than the fixed band.
    worst_fixed = by_key[(0.10, "(fc,fw) 10%")][2]
    worst_adaptive = by_key[(0.10, "(ac,aw)")][2]
    assert worst_adaptive <= worst_fixed * 1.5
