"""Benchmark / reproduction of Figure 17 (matching vs. dynamic-programming time).

The per-comparison cost of the adaptive algorithms splits into the
salient-feature matching / inconsistency-removal step and the constrained
dynamic program.  The paper shows the matching step is a small share of the
total; this bench asserts it stays a minority share.
"""

from __future__ import annotations

from _bench_utils import save_result

from repro.experiments import run_fig17


def test_fig17_matching_vs_dp_time(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig17(dataset_names=("gun",), num_series=14, seed=7),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, "fig17", result)
    shares = {str(row[1]): float(row[5]) for row in result.rows}
    benchmark.extra_info["matching_share"] = {
        label: round(value, 4) for label, value in shares.items()
    }

    # Fixed core & fixed width has no matching overhead at all.
    assert shares["(fc,fw) 10%"] == 0.0
    # The adaptive algorithms spend most of their time in the DP, not in the
    # matching / inconsistency-removal step.
    for label in ("(ac,fw) 10%", "(ac,aw)", "(ac2,aw)"):
        assert shares[label] < 0.5
