"""Helpers shared by the benchmark modules (result saving, summarising)."""

from __future__ import annotations

import os
from typing import Dict

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(results_dir: str, name: str, result) -> str:
    """Write an ExperimentResult's text and CSV renderings to disk."""
    text_path = os.path.join(results_dir, f"{name}.txt")
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(result.to_text())
        handle.write("\n")
    csv_path = os.path.join(results_dir, f"{name}.csv")
    with open(csv_path, "w", encoding="utf-8") as handle:
        handle.write(result.to_csv())
    return text_path


def summarise_rows(result, value_column: int, label_column: int = 1) -> Dict[str, float]:
    """Collapse an experiment result to {algorithm-label: value} pairs."""
    summary: Dict[str, float] = {}
    for row in result.rows:
        label = str(row[label_column])
        value = row[value_column]
        if isinstance(value, (int, float)):
            summary[label] = round(float(value), 4)
    return summary
