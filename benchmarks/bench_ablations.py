"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures, but each ablation isolates one design decision of the
sDTW pipeline and records how the distance error and cell gain respond on a
Trace-like sample:

* inconsistency pruning on vs. off (Section 3.2.2),
* the ε-relaxed extrema acceptance vs. strict extrema (Section 3.1.2),
* asymmetric vs. symmetric (union) bands (Section 3.3.3),
* the adaptive-width lower bound (Section 3.3.1).
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.config import MatchingConfig, SDTWConfig, ScaleSpaceConfig
from repro.core.sdtw import SDTW
from repro.datasets.synthetic import make_trace_like
from repro.retrieval.evaluation import distance_error
from repro.retrieval.index import compute_distance_index


@pytest.fixture(scope="module")
def trace_values():
    dataset = make_trace_like(num_series=10, seed=17)
    return [ts.values for ts in dataset]


@pytest.fixture(scope="module")
def reference(trace_values):
    return compute_distance_index(trace_values, "full")


def _evaluate(trace_values, reference, config: SDTWConfig):
    engine = SDTW(config)
    index = compute_distance_index(trace_values, "ac,aw", engine, symmetrize=False)
    return {
        "distance_error": distance_error(reference.distances, index.distances),
        "cell_gain": 1.0 - index.cells_filled / max(index.total_cells, 1),
    }


def test_ablation_inconsistency_pruning(benchmark, trace_values, reference):
    """Disabling inconsistency pruning must not crash and typically hurts
    the error because crossing matches distort the adaptive core."""
    with_pruning = _evaluate(trace_values, reference, SDTWConfig())
    without_cfg = SDTWConfig(matching=MatchingConfig(prune_inconsistencies=False))
    without_pruning = benchmark.pedantic(
        lambda: _evaluate(trace_values, reference, without_cfg),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["with_pruning"] = with_pruning
    benchmark.extra_info["without_pruning"] = without_pruning
    assert np.isfinite(without_pruning["distance_error"])


def test_ablation_epsilon_relaxation(benchmark, trace_values, reference):
    """Strict extrema (ε = 0) keep fewer keypoints; the pipeline must still
    work and the relaxed default should not be worse in error."""
    strict_cfg = SDTWConfig(scale_space=ScaleSpaceConfig(epsilon=0.0))
    strict = benchmark.pedantic(
        lambda: _evaluate(trace_values, reference, strict_cfg),
        rounds=1, iterations=1,
    )
    relaxed = _evaluate(trace_values, reference, SDTWConfig())
    benchmark.extra_info["strict_epsilon"] = strict
    benchmark.extra_info["relaxed_epsilon"] = relaxed
    assert np.isfinite(strict["distance_error"])
    assert relaxed["distance_error"] <= strict["distance_error"] + 0.5


def test_ablation_symmetric_band(benchmark, trace_values, reference):
    """The symmetric (union) band can only widen the search region, so its
    error is never larger than the asymmetric band's error."""
    symmetric_cfg = SDTWConfig(symmetric_band=True)
    symmetric = benchmark.pedantic(
        lambda: _evaluate(trace_values, reference, symmetric_cfg),
        rounds=1, iterations=1,
    )
    asymmetric = _evaluate(trace_values, reference, SDTWConfig())
    benchmark.extra_info["symmetric"] = symmetric
    benchmark.extra_info["asymmetric"] = asymmetric
    assert symmetric["distance_error"] <= asymmetric["distance_error"] + 1e-9
    assert symmetric["cell_gain"] <= asymmetric["cell_gain"] + 1e-9


def test_ablation_adaptive_width_lower_bound(benchmark, trace_values, reference):
    """Raising the adaptive-width lower bound trades cell gain for accuracy."""
    tight_cfg = SDTWConfig(adaptive_width_lower_bound=0.05)
    wide_cfg = SDTWConfig(adaptive_width_lower_bound=0.40)
    tight = benchmark.pedantic(
        lambda: _evaluate(trace_values, reference, tight_cfg),
        rounds=1, iterations=1,
    )
    wide = _evaluate(trace_values, reference, wide_cfg)
    benchmark.extra_info["lower_bound_0.05"] = tight
    benchmark.extra_info["lower_bound_0.40"] = wide
    assert wide["distance_error"] <= tight["distance_error"] + 1e-9
    assert tight["cell_gain"] >= wide["cell_gain"] - 1e-9
