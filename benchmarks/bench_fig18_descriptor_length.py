"""Benchmark / reproduction of Figure 18 (impact of the descriptor length).

Sweeps the descriptor length over a subset of the paper's 4…128 range for
the adaptive algorithms and records distance error, top-10 accuracy and the
cell gain per length.  The paper's qualitative finding asserted here: the
adaptive algorithms remain usable across the sweep, and moderate-to-long
descriptors do not collapse the accuracy.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_result

from repro.experiments import run_fig18

DATASETS = ("gun", "trace", "50words")
LENGTHS = (4, 16, 64)


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig18_descriptor_length_sweep(benchmark, results_dir, dataset):
    # k = 5 rather than the paper's 10 so the retrieval criterion is not
    # saturated on the reduced 12-series sample (top-10 of 11 candidates
    # would trivially overlap).
    result = benchmark.pedantic(
        lambda: run_fig18(
            dataset_names=(dataset,),
            num_series=12,
            seed=7,
            descriptor_lengths=LENGTHS,
            k=5,
        ),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, f"fig18_{dataset}", result)

    # Collect the (ac,aw) series across descriptor lengths.
    acaw = {
        int(row[1]): {"error": float(row[3]), "top5": float(row[4])}
        for row in result.rows
        if row[2] == "(ac,aw)"
    }
    benchmark.extra_info["acaw_by_length"] = {
        str(k): v for k, v in sorted(acaw.items())
    }
    assert set(acaw) == set(LENGTHS)
    for values in acaw.values():
        assert values["error"] >= 0.0
        assert 0.0 <= values["top5"] <= 1.0
