"""Micro-benchmarks of the computational kernels.

Not a paper figure, but useful for tracking the cost of the primitives the
experiments are built from: the full DTW dynamic program, the banded DP at
the paper's band widths, FastDTW, salient-feature extraction, and the
matching + pruning step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SDTWConfig
from repro.core.consistency import prune_inconsistent_pairs
from repro.core.features import extract_salient_features
from repro.core.matching import match_salient_features
from repro.core.sdtw import SDTW
from repro.dtw.banded import banded_dtw
from repro.dtw.constraints import sakoe_chiba_band_fraction
from repro.dtw.fastdtw import fastdtw
from repro.dtw.full import dtw_distance


@pytest.fixture(scope="module")
def series_pair():
    rng = np.random.default_rng(7)
    t = np.linspace(0, 1, 275)
    x = np.exp(-((t - 0.4) ** 2) / 0.003) + 0.3 * np.sin(8 * t) + rng.normal(0, 0.01, t.size)
    y = np.exp(-((t - 0.5) ** 2) / 0.003) + 0.3 * np.sin(8 * t - 0.4) + rng.normal(0, 0.01, t.size)
    return x, y


def test_kernel_full_dtw(benchmark, series_pair):
    x, y = series_pair
    value = benchmark(lambda: dtw_distance(x, y))
    assert value >= 0.0


@pytest.mark.parametrize("width", [0.06, 0.10, 0.20])
def test_kernel_banded_dtw(benchmark, series_pair, width):
    x, y = series_pair
    band = sakoe_chiba_band_fraction(x.size, y.size, width)
    result = benchmark(lambda: banded_dtw(x, y, band, return_path=False))
    assert result.distance >= dtw_distance(x, y) - 1e-9


def test_kernel_fastdtw(benchmark, series_pair):
    x, y = series_pair
    result = benchmark(lambda: fastdtw(x, y, radius=1))
    assert result.distance >= 0.0


def test_kernel_feature_extraction(benchmark, series_pair):
    x, _ = series_pair
    features = benchmark(lambda: extract_salient_features(x, SDTWConfig()))
    assert len(features) > 0


def test_kernel_matching_and_pruning(benchmark, series_pair):
    x, y = series_pair
    config = SDTWConfig()
    fx = extract_salient_features(x, config)
    fy = extract_salient_features(y, config)

    def run():
        matches = match_salient_features(fx, fy, config.matching)
        return prune_inconsistent_pairs(matches, config.matching)

    alignment = benchmark(run)
    assert alignment.num_pairs >= 0


def test_kernel_end_to_end_sdtw(benchmark, series_pair):
    x, y = series_pair
    engine = SDTW()
    engine.extract_features(x)
    engine.extract_features(y)
    result = benchmark(lambda: engine.distance(x, y, "ac,aw"))
    assert result.distance >= 0.0
