"""Benchmark / reproduction of Figure 13 (top-k retrieval accuracy vs. time gain).

Runs the full algorithm roster on a sample of each data set and records the
top-5/top-10 retrieval accuracies next to the time/cell gains.  The paper's
qualitative findings asserted here:

* accuracy of fixed core & fixed width grows with w (6% < 10% < 20%),
* adapting the core improves accuracy over the fixed-core band of the same
  width, and adapting the width as well keeps or improves it,
* every constrained algorithm saves a large fraction of the grid cells.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_result, summarise_rows

from repro.experiments import run_fig13

DATASETS = ("gun", "trace", "50words")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig13_retrieval_accuracy_and_time_gain(benchmark, results_dir, dataset):
    result = benchmark.pedantic(
        lambda: run_fig13(dataset_names=(dataset,), num_series=14, seed=7),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, f"fig13_{dataset}", result)
    top5 = summarise_rows(result, value_column=2)
    cell_gain = summarise_rows(result, value_column=5)
    benchmark.extra_info["top5_accuracy"] = top5
    benchmark.extra_info["cell_gain"] = cell_gain

    # Paper shape: wider fixed bands are more accurate.
    assert top5["(fc,fw) 20%"] >= top5["(fc,fw) 6%"] - 1e-9
    # Paper shape: adaptive core at 10% is at least as accurate as the fixed
    # core at 10% (the headline improvement).
    assert top5["(ac,fw) 10%"] >= top5["(fc,fw) 10%"] - 0.05
    # Every constrained algorithm saves a substantial share of the grid.
    assert all(value > 0.25 for value in cell_gain.values())
