"""Indexed vs. exhaustive search: wall-clock speedup and recall@k.

Builds a persistent salient-feature index (``repro.indexing``) over
synthetic collections of growing size, persists it, reopens it from
memory-mapped shards, and answers the same k-NN workload twice — through
the two-stage indexed pipeline (codeword candidates -> exact cascade
re-rank) and through the exhaustive :class:`repro.engine.DistanceEngine`
scan.

The collections are *variable-length* (each 50words-like series is
resampled to a random length within ±15% of the nominal one) because
that is the regime real DTW retrieval lives in — and the regime where
an index matters.  Over equal-length collections the engine's tight
Sakoe–Chiba envelopes already prune ~97% of an easy synthetic
collection and an exhaustive scan is hard to beat by more than ~2x
(``--equal-length`` lets you measure exactly that); with mixed lengths
only the weak global-envelope bound applies, the exhaustive scan pays a
full banded DP for most candidates, and candidate generation changes
the complexity class of a query.  For every collection size the
benchmark reports:

* index build time and on-disk size,
* mean per-query wall-clock of both paths and the speedup,
* recall@k of the indexed ranking against the exhaustive one,
* resident-set growth of serving the index via mmap vs. loading the
  shards fully into RAM (the mmap path should stay measurably below).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_indexed_search.py \
        --sizes 1000,5000,20000 --queries 10 --k 10 --candidates 100

The acceptance bar for the indexing PR: on the 5000-series collection
the indexed path must reach recall@10 >= 0.95 at >= 5x end-to-end
speedup over the exhaustive scan (checked whenever a size >= 5000 is
benchmarked; ``--min-recall`` / ``--min-speedup`` override the bar).
``--dry-run`` shrinks everything for CI smoke coverage and additionally
asserts the degenerate C = N equivalence.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time
from typing import List, Optional

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.base import Dataset, TimeSeries
from repro.datasets.synthetic import make_fiftywords_like
from repro.indexing import CodebookConfig, IndexedSearcher
from repro.utils.preprocessing import resample_linear
from repro.utils.rng import rng_from_seed
from repro.utils.tables import format_table


def build_collection(size: int, length: int, seed: int,
                     length_spread: float) -> Dataset:
    """A 50words-like collection, resampled to mixed lengths.

    ``length_spread=0`` keeps every series at the nominal length (the
    equal-length regime where the engine's tight envelopes apply).
    """
    dataset = make_fiftywords_like(num_series=size, length=length, seed=seed)
    if length_spread <= 0.0:
        return dataset
    rng = rng_from_seed(seed + 1)
    series = []
    for index, ts in enumerate(dataset):
        target = int(round(length * rng.uniform(1.0 - length_spread,
                                                1.0 + length_spread)))
        series.append(TimeSeries(
            values=resample_linear(ts.values, max(16, target)),
            label=ts.label,
            identifier=ts.identifier or f"series-{index:05d}",
        ))
    return Dataset(name=f"{dataset.name}-varlen", series=series,
                   metadata=dict(dataset.metadata, length_spread=length_spread))


def directory_size_bytes(path: str) -> int:
    total = 0
    for name in os.listdir(path):
        total += os.path.getsize(os.path.join(path, name))
    return total


_RSS_PROBE = r"""
import sys
import numpy as np
from repro.indexing import IndexReader

directory, use_mmap = sys.argv[1], sys.argv[2] == "1"
reader = IndexReader.open(directory, mmap=use_mmap)
index = reader.index
# One small scoring pass: under mmap only the touched postings pages
# fault in, while the preloaded reader has already materialised every
# shard array.
probe_size = min(16, index.num_codewords)
bag = (np.arange(probe_size, dtype=np.int32), np.ones(probe_size))
index.scores(bag)
with open("/proc/self/statm", "r", encoding="ascii") as handle:
    pages = int(handle.read().split()[1])
import os
print(pages * os.sysconf("SC_PAGESIZE"))
"""


def measure_open_rss(directory: str, mmap: bool) -> Optional[int]:
    """Peak-free RSS of a fresh process serving the index.

    Spawning a subprocess per measurement removes allocator-reuse order
    effects: both children pay the identical interpreter + numpy
    baseline, so the difference between them is the resident index
    payload (memory-mapped shards vs. fully loaded arrays).
    """
    import subprocess

    try:
        completed = subprocess.run(
            [sys.executable, "-c", _RSS_PROBE, directory, "1" if mmap else "0"],
            capture_output=True, text=True, timeout=120, check=True,
        )
        return int(completed.stdout.strip().splitlines()[-1])
    except (subprocess.SubprocessError, OSError, ValueError, IndexError):
        return None


def _resolve_auto(value, size: int, floor: int, divisor: int) -> int:
    """``'auto'`` parameters scale with the collection size."""
    if isinstance(value, str) and value.strip().lower() == "auto":
        return max(floor, size // divisor)
    return int(value)


def run_benchmark(args: argparse.Namespace) -> int:
    config = SDTWConfig(
        descriptor=DescriptorConfig(num_bins=args.descriptor_bins)
    )
    rows: List[List[object]] = []
    failures: List[str] = []

    for size in args.sizes:
        # A ~2% candidate budget and ~N/20 codewords keep recall high as
        # same-class neighbourhoods densify with collection size.
        candidates = _resolve_auto(args.candidates, size, 100, 50)
        codewords = _resolve_auto(args.codewords, size, 256, 20)
        dataset = build_collection(
            size, args.length, args.seed,
            0.0 if args.equal_length else args.length_spread,
        )
        codebook_config = CodebookConfig.for_sdtw(
            config, num_codewords=codewords, seed=args.seed,
        )
        started = time.perf_counter()
        built = IndexedSearcher.from_dataset(
            dataset,
            config=config,
            codebook_config=codebook_config,
            constraint=args.constraint,
            num_shards=args.shards,
            candidate_budget=candidates,
            backend="vectorized",
        )
        build_seconds = time.perf_counter() - started

        workdir = tempfile.mkdtemp(prefix=f"repro-index-{size}-")
        try:
            built.save(workdir)
            index_bytes = directory_size_bytes(workdir)
            rss_mmap = measure_open_rss(workdir, True)
            rss_preload = measure_open_rss(workdir, False)

            searcher = IndexedSearcher.open(
                workdir, mmap=True, config=config,
                constraint=args.constraint, candidate_budget=candidates,
                backend="vectorized",
            )
            searcher.engine.prepare()
            num_queries = min(args.queries, size)
            stored = searcher.engine.stored_items()[:num_queries]
            queries = [values for _, values, _ in stored]
            exclude = [identifier for identifier, _, _ in stored]
            # One warm-up query outside the timed region (page faults,
            # envelope caches).
            searcher.query(queries[0], args.k, exclude_identifier=exclude[0])

            report = searcher.recall_at_k(
                queries, args.k,
                candidates=candidates, exclude_identifiers=exclude,
            )
            if args.dry_run:
                degenerate = searcher.recall_at_k(
                    queries[:2], args.k, candidates=size,
                    exclude_identifiers=exclude[:2],
                )
                if degenerate.mean_recall != 1.0:
                    failures.append(
                        f"size {size}: C=N recall was "
                        f"{degenerate.mean_recall:.3f}, expected exactly 1.0"
                    )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

        exhaustive_ms = 1000.0 * report.exhaustive_seconds / max(1, num_queries)
        indexed_ms = 1000.0 * report.indexed_seconds / max(1, num_queries)
        rss_note = (
            f"{(rss_mmap or 0) / 2**20:.1f} / {(rss_preload or 0) / 2**20:.1f}"
            if rss_mmap is not None and rss_preload is not None else "n/a"
        )
        rows.append([
            size,
            f"{candidates}/{codewords}",
            round(build_seconds, 2),
            f"{index_bytes / 2**20:.1f}",
            round(exhaustive_ms, 2),
            round(indexed_ms, 2),
            round(report.speedup, 1),
            round(report.mean_recall, 3),
            rss_note,
        ])

        if size >= args.gate_size:
            if report.mean_recall < args.min_recall:
                failures.append(
                    f"size {size}: recall@{args.k} {report.mean_recall:.3f} "
                    f"below the {args.min_recall:.2f} bar"
                )
            if report.speedup < args.min_speedup:
                failures.append(
                    f"size {size}: speedup {report.speedup:.1f}x below the "
                    f"{args.min_speedup:.1f}x bar"
                )
            if (
                rss_mmap is not None and rss_preload is not None
                and rss_mmap >= rss_preload
            ):
                failures.append(
                    f"size {size}: mmap RSS growth ({rss_mmap / 2**20:.1f} MiB) "
                    f"not below preload ({rss_preload / 2**20:.1f} MiB)"
                )

    print(format_table(
        ["series", "C/codewords", "build s", "index MiB", "exhaustive ms",
         "indexed ms", "speedup", f"recall@{args.k}", "RSS mmap/preload MiB"],
        rows,
        title=(
            f"Indexed vs exhaustive search (length {args.length}, "
            f"constraint {args.constraint})"
        ),
    ))
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nAll acceptance checks passed.")
    return 0


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sizes", default="1000,5000,20000",
                        help="comma-separated collection sizes")
    parser.add_argument("--length", type=int, default=270,
                        help="nominal series length (default: 270)")
    parser.add_argument("--length-spread", type=float, default=0.15,
                        help="series lengths drawn within ±this fraction of "
                             "the nominal length (default: 0.15)")
    parser.add_argument("--equal-length", action="store_true",
                        help="keep every series at the nominal length (the "
                             "regime where tight envelopes make the "
                             "exhaustive cascade hard to beat)")
    parser.add_argument("--queries", type=int, default=10,
                        help="queries per size (default: 10)")
    parser.add_argument("--k", type=int, default=10, help="neighbours per query")
    parser.add_argument("--candidates", default="auto",
                        help="candidate budget C; 'auto' scales it as "
                             "max(100, N/50) — a ~2%% budget keeps recall "
                             "high as same-class neighbourhoods densify "
                             "(default: auto)")
    parser.add_argument("--codewords", default="auto",
                        help="codebook size; 'auto' scales it as "
                             "max(256, N/20) so quantization cells stay "
                             "discriminative on large collections "
                             "(default: auto)")
    parser.add_argument("--shards", type=int, default=8,
                        help="postings shards (default: 8)")
    parser.add_argument("--descriptor-bins", type=int, default=64,
                        help="descriptor length (default: 64)")
    parser.add_argument("--constraint", default="fc,fw",
                        help="re-ranking constraint (default: fc,fw)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-recall", type=float, default=0.95,
                        help="recall bar at gated sizes (default: 0.95)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="speedup bar at gated sizes (default: 5.0)")
    parser.add_argument("--gate-size", type=int, default=5000,
                        help="apply the bars to sizes >= this (default: 5000)")
    parser.add_argument("--dry-run", action="store_true",
                        help="tiny CI configuration + C=N equivalence check")
    args = parser.parse_args(argv)
    if args.dry_run:
        args.sizes = "120"
        args.length = 96
        args.queries = 3
        args.k = 5
        args.candidates = 16
        args.codewords = 32
        args.descriptor_bins = 16
        args.shards = 3
        args.gate_size = 10 ** 9
        args.min_speedup = 0.0
    args.sizes = [int(part) for part in str(args.sizes).split(",") if part]
    return args


if __name__ == "__main__":
    sys.exit(run_benchmark(parse_args()))
