"""Benchmark / reproduction of Table 2 (salient points per temporal scale).

Extracts salient features from a sample of each data set with a
three-octave pyramid and reports the average fine/medium/rough counts.
"""

from __future__ import annotations

from _bench_utils import save_result

from repro.experiments import run_table2


def test_table2_salient_point_counts(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_table2(num_series=10, seed=7), rounds=1, iterations=1
    )
    save_result(results_dir, "table2", result)
    for row in result.rows:
        name = str(row[0])
        benchmark.extra_info[f"{name}_fine"] = round(float(row[1]), 1)
        benchmark.extra_info[f"{name}_medium"] = round(float(row[2]), 1)
        benchmark.extra_info[f"{name}_rough"] = round(float(row[3]), 1)
    # Within-row shape of the paper's table: fine-scale features dominate.
    for row in result.rows:
        assert row[1] > row[3]
