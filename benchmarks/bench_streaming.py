"""Streaming benchmark: online monitor vs. naive per-tick recompute.

Measures end-to-end monitoring throughput (stream points per second) of
the streaming subsystem against the naive baseline that recomputes the
whole window DTW from scratch at every tick — the cost model an online
deployment would face without carried state.  Three sections:

* **Sliding cascade vs. naive scan** — the headline comparison: a
  10k-point stream monitored for 4 registered patterns through
  :class:`repro.streaming.StreamMonitor` (LB_Kim from O(1) window
  extrema, LB_Keogh, early-abandoning banded DTW) versus
  :func:`repro.streaming.offline.naive_sliding_scan` per pattern.  Both
  sides are verified to report *identical* match intervals and distances
  before the speedup is printed.
* **SPRING throughput** — the carried-column subsequence matcher's
  points/sec (its naive counterpart is O(stream) per tick and is only
  timed on a short prefix to keep the benchmark bounded).
* **Incremental extraction** — :class:`repro.streaming.IncrementalExtractor`
  hop-based feature maintenance versus batch re-extraction every tick.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_streaming.py \
        --length 10000 --patterns 4 --pattern-length 128

The acceptance bar for the streaming PR: on a 10k-point stream with 4
registered patterns, the cascaded monitor must be at least 5x faster
than the naive per-tick recompute baseline while reporting identical
matches.
"""

from __future__ import annotations

import argparse
import time
from typing import List

import numpy as np

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.core.features import extract_salient_features
from repro.datasets.generators import embed_pattern_stream, make_stream_patterns
from repro.streaming import IncrementalExtractor, StreamBuffer, StreamMonitor
from repro.streaming.offline import (
    calibrate_thresholds,
    naive_sliding_scan,
    naive_spring_scan,
)
from repro.utils.rng import rng_from_seed
from repro.utils.tables import format_table


def run_sliding_section(values, patterns, truth, config, args, rows) -> float:
    thresholds = calibrate_thresholds(
        values, patterns, truth, config, constraint=args.constraint
    )

    # Naive baseline: full recompute per tick, per pattern.
    start = time.perf_counter()
    naive_matches = []
    for index, pattern in enumerate(patterns):
        matches, _ = naive_sliding_scan(
            values, pattern, thresholds[index],
            constraint=args.constraint, config=config,
            name=f"pattern-{index:03d}",
        )
        naive_matches.append(matches)
    naive_seconds = time.perf_counter() - start

    # Online monitor with the full cascade.
    monitor = StreamMonitor(config)
    monitor.add_stream("bench", capacity=2 * args.pattern_length + 64)
    for index, pattern in enumerate(patterns):
        monitor.add_pattern(
            pattern, name=f"pattern-{index:03d}", threshold=thresholds[index],
            mode="sliding", constraint=args.constraint,
        )
    start = time.perf_counter()
    online = monitor.extend("bench", values) + monitor.finalize("bench")
    online_seconds = time.perf_counter() - start

    # Equivalence check before any timing is trusted.
    identical = True
    for index in range(len(patterns)):
        mine = sorted(
            [m for m in online if m.pattern == f"pattern-{index:03d}"],
            key=lambda m: m.start,
        )
        theirs = naive_matches[index]
        if len(mine) != len(theirs):
            identical = False
            break
        for a, b in zip(mine, theirs):
            if (a.start, a.end) != (b.start, b.end) or not np.isclose(
                a.distance, b.distance, rtol=0, atol=1e-9
            ):
                identical = False
                break
    speedup = naive_seconds / online_seconds if online_seconds > 0 else float("inf")
    total = sum(
        monitor.stats(f"pattern-{index:03d}").pruned
        for index in range(len(patterns))
    )
    evaluated = sum(
        monitor.stats(f"pattern-{index:03d}").evaluated
        for index in range(len(patterns))
    )
    rows.append([
        "naive per-tick recompute", f"{naive_seconds:.3f}",
        f"{values.size / naive_seconds:,.0f}", "1.0", "-", "yes",
    ])
    rows.append([
        "monitor (cascade)", f"{online_seconds:.3f}",
        f"{values.size / online_seconds:,.0f}", f"{speedup:.1f}",
        f"{total / evaluated:.1%}" if evaluated else "-",
        "yes" if identical else "NO",
    ])
    if not identical:
        raise SystemExit("FAIL: online matches differ from the naive scan")
    return speedup


def run_spring_section(values, patterns, truth, args, rows) -> None:
    thresholds = calibrate_thresholds(
        values, patterns, truth, mode="spring", slack=1.1
    )

    monitor = StreamMonitor()
    monitor.add_stream("bench", capacity=2 * args.pattern_length + 64)
    for index, pattern in enumerate(patterns):
        monitor.add_pattern(
            pattern, name=f"pattern-{index:03d}", threshold=thresholds[index],
            mode="spring",
        )
    start = time.perf_counter()
    monitor.extend("bench", values)
    monitor.finalize("bench")
    online_seconds = time.perf_counter() - start
    rows.append([
        "SPRING (carried columns)", f"{online_seconds:.3f}",
        f"{values.size / online_seconds:,.0f}", "-", "-", "-",
    ])

    # The naive SPRING baseline rebuilds an O(t x m) table per tick; time
    # it on a short prefix only (it is quadratic in the prefix length).
    prefix = values[: min(args.spring_naive_prefix, values.size)]
    start = time.perf_counter()
    naive_spring_scan(prefix, patterns[0], thresholds[0])
    naive_seconds = time.perf_counter() - start
    rows.append([
        f"naive SPRING ({prefix.size}-pt prefix, 1 pattern)",
        f"{naive_seconds:.3f}",
        f"{prefix.size / naive_seconds:,.0f}", "-", "-", "-",
    ])


def run_extractor_section(values, config, args, rows) -> None:
    window = min(256, max(64, args.pattern_length))
    slice_length = min(values.size, 4 * window)
    chunk = values[:slice_length]

    extractor = IncrementalExtractor(window, config)
    buffer = StreamBuffer(window)
    start = time.perf_counter()
    for value in chunk:
        buffer.append(value)
        extractor.observe(buffer)
    incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for t in range(window - 1, slice_length):
        extract_salient_features(chunk[t - window + 1: t + 1], config)
    batch_seconds = time.perf_counter() - start

    speedup = batch_seconds / incremental_seconds if incremental_seconds else float("inf")
    rows.append([
        f"batch extraction per tick ({slice_length} pts)",
        f"{batch_seconds:.3f}",
        f"{slice_length / batch_seconds:,.0f}", "1.0", "-", "-",
    ])
    rows.append([
        f"incremental extractor (hop={extractor.hop}, "
        f"{extractor.stats.reuse_fraction:.0%} conv reuse)",
        f"{incremental_seconds:.3f}",
        f"{slice_length / incremental_seconds:,.0f}", f"{speedup:.1f}", "-", "-",
    ])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=10000)
    parser.add_argument("--patterns", type=int, default=4)
    parser.add_argument("--pattern-length", type=int, default=128)
    parser.add_argument("--occurrences", type=int, default=3)
    parser.add_argument("--constraint", default="fc,fw")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--spring-naive-prefix", type=int, default=600)
    parser.add_argument("--quick", action="store_true",
                        help="CI dry-run sizes (overrides length/patterns)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when the cascade speedup falls "
                             "below this factor")
    args = parser.parse_args()
    if args.quick:
        args.length = min(args.length, 1500)
        args.patterns = min(args.patterns, 2)
        args.pattern_length = min(args.pattern_length, 64)
        args.spring_naive_prefix = min(args.spring_naive_prefix, 300)

    rng = rng_from_seed(args.seed)
    patterns = make_stream_patterns(args.patterns, args.pattern_length, rng)
    values, truth = embed_pattern_stream(
        args.length, patterns, rng, occurrences_per_pattern=args.occurrences
    )
    config = SDTWConfig(descriptor=DescriptorConfig(num_bins=16))

    print(f"Stream: {values.size} points, {len(patterns)} patterns of "
          f"length {args.pattern_length}, {len(truth)} embedded occurrences, "
          f"constraint {args.constraint}, seed {args.seed}")
    print()

    rows: List[List[object]] = []
    speedup = run_sliding_section(values, patterns, truth, config, args, rows)
    run_spring_section(values, patterns, truth, args, rows)
    run_extractor_section(values, config, args, rows)
    print(format_table(
        ["configuration", "seconds", "points/sec", "speedup", "pruned",
         "matches identical"],
        rows, title="Streaming throughput",
    ))
    print()
    print(f"cascade speedup over naive per-tick recompute: {speedup:.1f}x")
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required "
              f"{args.min_speedup:.1f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
