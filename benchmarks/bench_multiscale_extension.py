"""Benchmark of the multi-resolution + sDTW combination (paper §2.1.4 note).

Not a paper figure: the paper only remarks that its constraint-based
pruning can be combined with reduced-representation approaches.  This bench
quantifies that combination against plain sDTW and plain FastDTW on a
Trace-like pair: the combined variant should fill no more cells than plain
sDTW while keeping the distance estimate close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SDTWConfig
from repro.core.multiscale import multiscale_sdtw
from repro.core.sdtw import SDTW
from repro.datasets.synthetic import make_trace_like
from repro.dtw.fastdtw import fastdtw
from repro.dtw.full import dtw_distance


@pytest.fixture(scope="module")
def trace_pair():
    dataset = make_trace_like(num_series=4, seed=29)
    return dataset[0].values, dataset[1].values


def test_multiscale_sdtw_vs_plain(benchmark, trace_pair):
    x, y = trace_pair
    config = SDTWConfig()
    engine = SDTW(config)
    engine.extract_features(x)
    engine.extract_features(y)

    exact = dtw_distance(x, y)
    plain = engine.distance(x, y, "ac,aw")
    fast = fastdtw(x, y, radius=1)

    combined = benchmark(
        lambda: multiscale_sdtw(x, y, "ac,aw", config, engine=engine)
    )

    benchmark.extra_info["exact_distance"] = round(exact, 4)
    benchmark.extra_info["plain_sdtw"] = {
        "distance": round(plain.distance, 4),
        "cells": plain.cells_filled,
    }
    benchmark.extra_info["fastdtw"] = {
        "distance": round(fast.distance, 4),
        "cells": fast.cells_filled,
    }
    benchmark.extra_info["multiscale_sdtw"] = {
        "distance": round(combined.distance, 4),
        "cells": combined.cells_filled,
    }

    assert combined.distance >= exact - 1e-9
    assert combined.cells_filled <= plain.cells_filled
    assert np.isfinite(combined.distance)
