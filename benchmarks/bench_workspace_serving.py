"""Workspace serving benchmark: concurrent-query throughput, micro-batching
on vs. off.

Simulates a serving deployment: T client threads fire exact k-NN queries
at one shared :class:`repro.service.Workspace` and the benchmark measures
end-to-end throughput (queries per second) in two configurations:

* **un-batched** — every thread runs the full per-query cascade itself
  through :meth:`Workspace.query` on the workspace's default (serial)
  backend; concurrent callers contend for the interpreter while each
  drives its own per-pair Python row loop.
* **micro-batched** — ``serving.micro_batch`` is on, so concurrent
  callers are coalesced by the :class:`repro.service.MicroBatcher` into
  single :meth:`DistanceEngine.knn` calls executed through the engine's
  vectorised batch kernels: the batch advances its DP over ``(C, width)``
  numpy matrices instead of per-caller Python loops.  This is the
  serving rationale for coalescing — a batch unlocks lock-step kernels
  that an interactive single query on the default backend does not use.

Both configurations are verified to return **bit-identical** hits before
any timing is reported (micro-batching is a throughput knob, never a
semantics knob; the engine's cross-backend equivalence suite pins the
kernel identity down).  The expectation — checked by the CI dry run —
is that micro-batched throughput is at least the un-batched throughput
once several threads are in flight.  The honest flip side: a workspace
explicitly configured with ``backend="vectorized"`` already spends its
time inside GIL-releasing numpy kernels, and there concurrent unbatched
threads scale with cores while coalescing serialises — micro-batching
is the right knob for the default transparent backend, not for that one.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_workspace_serving.py \
        --series 64 --length 128 --queries 48 --threads 8

``--dry-run`` shrinks everything for CI.
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.synthetic import make_gun_like
from repro.service import (
    EngineConfig,
    IndexConfig,
    ServingConfig,
    Workspace,
    WorkspaceConfig,
)
from repro.utils.tables import format_table


def build_workspace(dataset, *, micro_batch: bool, window_ms: float) -> Workspace:
    workspace = Workspace(WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw", backend="serial"),
        index=IndexConfig(num_codewords=32, num_shards=2),
        serving=ServingConfig(
            micro_batch=micro_batch,
            batch_window_ms=window_ms,
            max_batch=64,
        ),
        default_k=5,
    ))
    workspace.add_dataset(dataset)
    # Pay snapshot construction up front so the timed section measures
    # serving, not preparation.
    workspace.engine
    return workspace


def run_clients(
    workspace: Workspace,
    queries: List[np.ndarray],
    *,
    threads: int,
    k: int,
) -> Tuple[float, List[Optional[Tuple]]]:
    """Fan the query list across T threads; returns (seconds, outcomes)."""
    outcomes: List[Optional[Tuple]] = [None] * len(queries)
    errors: List[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def worker(slot: int) -> None:
        try:
            barrier.wait()
            for qi in range(slot, len(queries), threads):
                result = workspace.query(queries[qi], k, mode="exact")
                outcomes[qi] = (result.ids, result.distances)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(slot,)) for slot in range(threads)]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed, outcomes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--series", type=int, default=64,
                        help="stored collection size (default: 64)")
    parser.add_argument("--length", type=int, default=128,
                        help="series length (default: 128)")
    parser.add_argument("--queries", type=int, default=48,
                        help="queries fired per configuration (default: 48)")
    parser.add_argument("--threads", type=int, default=8,
                        help="client threads (default: 8)")
    parser.add_argument("--k", type=int, default=5, help="neighbours per query")
    parser.add_argument("--window-ms", type=float, default=2.0,
                        help="micro-batch window (default: 2.0 ms)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions, best-of (default: 3)")
    parser.add_argument("--dry-run", action="store_true",
                        help="tiny configuration for CI")
    args = parser.parse_args()

    if args.dry_run:
        args.series = 24
        args.length = 96
        args.queries = 16
        args.threads = 4
        args.repeats = 2

    dataset = make_gun_like(num_series=args.series, length=args.length, seed=7)
    rng = np.random.default_rng(11)
    queries = [
        dataset[int(rng.integers(len(dataset)))].values
        + rng.normal(scale=0.05, size=args.length)
        for _ in range(args.queries)
    ]

    print(f"Workspace serving: {args.series} series x length {args.length}, "
          f"{args.queries} queries, {args.threads} threads, k={args.k}")

    unbatched = build_workspace(dataset, micro_batch=False,
                                window_ms=args.window_ms)
    batched = build_workspace(dataset, micro_batch=True,
                              window_ms=args.window_ms)

    # Equivalence gate: the two serving paths must agree bit for bit.
    _, reference = run_clients(unbatched, queries, threads=args.threads, k=args.k)
    _, coalesced = run_clients(batched, queries, threads=args.threads, k=args.k)
    if reference != coalesced:
        raise SystemExit(
            "FAIL: micro-batched results differ from un-batched results"
        )
    print("equivalence: micro-batched hits are bit-identical to un-batched")

    best_unbatched = min(
        run_clients(unbatched, queries, threads=args.threads, k=args.k)[0]
        for _ in range(args.repeats)
    )
    best_batched = min(
        run_clients(batched, queries, threads=args.threads, k=args.k)[0]
        for _ in range(args.repeats)
    )

    qps_unbatched = args.queries / best_unbatched
    qps_batched = args.queries / best_batched
    ratio = qps_batched / qps_unbatched
    batcher = batched._batcher
    per_batch = (
        batcher.requests_batched / batcher.batches_executed
        if batcher is not None and batcher.batches_executed else 0.0
    )

    print()
    print(format_table(
        ["configuration", "wall s", "queries/s"],
        [
            ["un-batched", round(best_unbatched, 4), round(qps_unbatched, 1)],
            ["micro-batched", round(best_batched, 4), round(qps_batched, 1)],
        ],
        title="Concurrent exact-query throughput (best of "
              f"{args.repeats})",
    ))
    print()
    print(f"micro-batched / un-batched throughput: {ratio:.2f}x "
          f"(mean {per_batch:.1f} requests per engine batch)")
    if ratio >= 1.0:
        print("OK: micro-batched throughput >= un-batched")
    else:
        print("note: micro-batching did not pay off at this configuration "
              "(tiny collections or few threads leave nothing to coalesce)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
