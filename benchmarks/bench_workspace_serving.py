"""Workspace serving benchmark: concurrent-query throughput, micro-batching
on vs. off, plus a serving-churn run for the incremental snapshot path.

Simulates a serving deployment: T client threads fire exact k-NN queries
at one shared :class:`repro.service.Workspace` and the benchmark measures
end-to-end throughput (queries per second) in two configurations:

* **un-batched** — every thread runs the full per-query cascade itself
  through :meth:`Workspace.query` on the workspace's default (serial)
  backend; concurrent callers contend for the interpreter while each
  drives its own per-pair Python row loop.
* **micro-batched** — ``serving.micro_batch`` is on, so concurrent
  callers are coalesced by the :class:`repro.service.MicroBatcher` into
  single :meth:`DistanceEngine.knn` calls executed through the engine's
  vectorised batch kernels: the batch advances its DP over ``(C, width)``
  numpy matrices instead of per-caller Python loops.  This is the
  serving rationale for coalescing — a batch unlocks lock-step kernels
  that an interactive single query on the default backend does not use.

Both configurations are verified to return **bit-identical** hits before
any timing is reported (micro-batching is a throughput knob, never a
semantics knob; the engine's cross-backend equivalence suite pins the
kernel identity down).  The expectation — checked by the CI dry run —
is that micro-batched throughput is at least the un-batched throughput
once several threads are in flight.  The honest flip side: a workspace
explicitly configured with ``backend="vectorized"`` already spends its
time inside GIL-releasing numpy kernels, and there concurrent unbatched
threads scale with cores while coalescing serialises — micro-batching
is the right knob for the default transparent backend, not for that one.

The ``--churn`` mode measures the PR 6 incremental serving snapshot
instead: interleaved add/remove/query over a large collection (10k
series by default).  With ``serving.incremental_snapshots`` on, the
snapshot taken after a mutation *extends* the previous one — shared
prepared segments, one appended segment for the new series, tombstone
masks for removals — so the first query after an add pays O(new)
preparation instead of re-preparing all N stored series.  The run
reports steady-state p50/p99 query latency, churn-phase p50/p99, and
the first-query-after-add cost, and gates (ratio form, since the query
scan itself is O(N)) that the first query after an add stays within a
small factor of the steady-state median rather than absorbing an O(N)
rebuild.  A shorter rebuild-mode pass (``incremental_snapshots=False``)
runs alongside for comparison.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_workspace_serving.py \
        --series 64 --length 128 --queries 48 --threads 8
    PYTHONPATH=src python benchmarks/bench_workspace_serving.py \
        --churn --churn-series 10000

The ``--telemetry-guard`` mode gates the PR 7 telemetry layer instead:
two identical workspaces — ``serving.telemetry`` on vs. off — serve the
same exact-query stream and the guard asserts the enabled p50 latency
stays within ``--max-telemetry-overhead`` (default 5%) of the disabled
p50, modulo a small absolute noise floor.  This is the "near-zero
overhead" claim of :mod:`repro.telemetry` measured on the real serving
path, not a microbenchmark of the registry.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_workspace_serving.py \
        --telemetry-guard --repeats 5

The ``--http`` mode measures the PR 10 network service tier: a
:class:`repro.server.WorkspaceServer` serves the workspace over HTTP
and ≥8 concurrent :class:`repro.server.RemoteWorkspace` clients drive
exact queries at shard counts 1, 2 and 4 (``split_workspace``
scatter-gather behind one server).  Every HTTP result is asserted
bit-identical to the in-process single-workspace answer before it
counts, ``/metrics`` must parse as Prometheus exposition format 0.0.4,
and the run reports per-request p50/p99 latency plus end-to-end QPS
per shard count.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_workspace_serving.py \
        --http --threads 8 --queries 64

``--dry-run`` (alias ``--quick``) shrinks everything for CI; with
``--churn --json PATH`` the churn metrics are merged into PATH under
the ``"workspace_churn"`` key, ``--telemetry-guard --json PATH``
merges under ``"telemetry_overhead"`` and ``--http --json PATH`` under
``"serving_http"`` (the CI perf-guard artifact ``BENCH_ci.json`` is
shared with the incremental-index guard).
"""

from __future__ import annotations

import argparse
import http.client
import json
import re
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.synthetic import make_gun_like
from repro.server import RemoteWorkspace, WorkspaceServer, split_workspace
from repro.server.http import PROMETHEUS_CONTENT_TYPE
from repro.service import (
    EngineConfig,
    IndexConfig,
    ServingConfig,
    Workspace,
    WorkspaceConfig,
)
from repro.utils.tables import format_table


def build_workspace(dataset, *, micro_batch: bool, window_ms: float) -> Workspace:
    workspace = Workspace(WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw", backend="serial"),
        index=IndexConfig(num_codewords=32, num_shards=2),
        serving=ServingConfig(
            micro_batch=micro_batch,
            batch_window_ms=window_ms,
            max_batch=64,
        ),
        default_k=5,
    ))
    workspace.add_dataset(dataset)
    # Pay snapshot construction up front so the timed section measures
    # serving, not preparation.
    workspace.engine
    return workspace


def run_clients(
    workspace: Workspace,
    queries: List[np.ndarray],
    *,
    threads: int,
    k: int,
) -> Tuple[float, List[Optional[Tuple]]]:
    """Fan the query list across T threads; returns (seconds, outcomes)."""
    outcomes: List[Optional[Tuple]] = [None] * len(queries)
    errors: List[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def worker(slot: int) -> None:
        try:
            barrier.wait()
            for qi in range(slot, len(queries), threads):
                result = workspace.query(queries[qi], k, mode="exact")
                outcomes[qi] = (result.ids, result.distances)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(slot,)) for slot in range(threads)]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed, outcomes


def _percentile_ms(samples: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples) * 1000.0, q))


def build_churn_workspace(dataset, size: int, *, incremental: bool) -> Workspace:
    workspace = Workspace(WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw", backend="vectorized"),
        serving=ServingConfig(incremental_snapshots=incremental),
        default_k=5,
    ))
    for position in range(size):
        ts = dataset[position]
        workspace.add(
            ts.values,
            identifier=ts.identifier or f"series-{position:05d}",
            label=ts.label,
        )
    workspace.engine  # pay the initial snapshot before timing anything
    return workspace


def drive_churn(
    workspace: Workspace,
    dataset,
    *,
    size: int,
    rounds: int,
    steady_queries: int,
    k: int,
) -> Dict[str, List[float]]:
    """Interleave add/remove/query; return per-phase latency samples.

    Each round adds one fresh series and times the very next query
    (which absorbs the snapshot refresh), then a follow-up query at the
    new roster (churn steady state).  Every third round also removes a
    stored series so tombstone masking stays on the measured path.
    """
    rng = np.random.default_rng(17)
    length = dataset[0].values.size
    probes = [
        dataset[int(rng.integers(size))].values
        + rng.normal(scale=0.05, size=length)
        for _ in range(8)
    ]

    def timed_query(position: int) -> float:
        started = time.perf_counter()
        workspace.query(probes[position % len(probes)], k, mode="exact")
        return time.perf_counter() - started

    steady = [timed_query(position) for position in range(steady_queries)]
    first_after_add: List[float] = []
    churn: List[float] = []
    cursor = size
    for round_index in range(rounds):
        ts = dataset[cursor]
        workspace.add(
            ts.values,
            identifier=ts.identifier or f"series-{cursor:05d}",
            label=ts.label,
        )
        cursor += 1
        first_after_add.append(timed_query(round_index))
        churn.append(timed_query(round_index + 1))
        if round_index % 3 == 2:
            victims = workspace.identifiers
            workspace.remove(victims[int(rng.integers(len(victims)))])
            churn.append(timed_query(round_index + 2))
    return {
        "steady": steady,
        "first_after_add": first_after_add,
        "churn": churn,
    }


def run_churn_benchmark(args: argparse.Namespace) -> int:
    total_needed = args.churn_series + args.churn_rounds
    dataset = make_gun_like(
        num_series=total_needed, length=args.length, seed=13
    )
    print(f"Serving churn: {args.churn_series} stored series x length "
          f"{args.length}, {args.churn_rounds} add/remove/query rounds, "
          f"k={args.k}")

    derived_ws = build_churn_workspace(
        dataset, args.churn_series, incremental=True
    )
    derived = drive_churn(
        derived_ws, dataset, size=args.churn_series,
        rounds=args.churn_rounds, steady_queries=args.churn_steady,
        k=args.k,
    )
    # A short rebuild-mode pass for comparison: every post-mutation query
    # re-prepares all N series, so keep it brief at large N.
    rebuild_rounds = min(args.churn_rounds, 8)
    rebuilt_ws = build_churn_workspace(
        dataset, args.churn_series, incremental=False
    )
    rebuilt = drive_churn(
        rebuilt_ws, dataset, size=args.churn_series,
        rounds=rebuild_rounds, steady_queries=max(args.churn_steady // 2, 4),
        k=args.k,
    )

    steady_p50 = _percentile_ms(derived["steady"], 50)
    steady_p99 = _percentile_ms(derived["steady"], 99)
    churn_p50 = _percentile_ms(derived["churn"], 50)
    churn_p99 = _percentile_ms(derived["churn"], 99)
    first_p50 = _percentile_ms(derived["first_after_add"], 50)
    rebuilt_first_p50 = _percentile_ms(rebuilt["first_after_add"], 50)
    ratio = first_p50 / steady_p50 if steady_p50 > 0 else float("inf")

    print()
    print(format_table(
        ["metric", "derived (ms)", "rebuilt (ms)"],
        [
            ["steady query p50", round(steady_p50, 3),
             round(_percentile_ms(rebuilt["steady"], 50), 3)],
            ["steady query p99", round(steady_p99, 3),
             round(_percentile_ms(rebuilt["steady"], 99), 3)],
            ["churn query p50", round(churn_p50, 3),
             round(_percentile_ms(rebuilt["churn"], 50), 3)],
            ["churn query p99", round(churn_p99, 3),
             round(_percentile_ms(rebuilt["churn"], 99), 3)],
            ["first query after add p50", round(first_p50, 3),
             round(rebuilt_first_p50, 3)],
        ],
        title="Serving churn latency: incremental snapshots vs rebuild",
    ))
    print()
    print(f"first-query-after-add / steady p50: {ratio:.2f}x "
          f"(bar: {args.max_first_query_ratio:.1f}x + "
          f"{args.first_query_floor_ms:.1f} ms floor)")

    failures: List[str] = []
    bar = (args.max_first_query_ratio * steady_p50
           + args.first_query_floor_ms)
    if first_p50 > bar:
        failures.append(
            f"first query after an add took {first_p50:.2f} ms at p50, over "
            f"the {bar:.2f} ms bar ({args.max_first_query_ratio:.1f}x "
            f"steady p50 {steady_p50:.2f} ms + {args.first_query_floor_ms:.1f}"
            " ms) — snapshot refresh is not O(new)"
        )

    if args.json:
        metrics = {
            "series": args.churn_series,
            "rounds": args.churn_rounds,
            "length": args.length,
            "k": args.k,
            "steady_p50_ms": round(steady_p50, 4),
            "steady_p99_ms": round(steady_p99, 4),
            "churn_p50_ms": round(churn_p50, 4),
            "churn_p99_ms": round(churn_p99, 4),
            "first_query_after_add_p50_ms": round(first_p50, 4),
            "rebuilt_first_query_after_add_p50_ms": round(
                rebuilt_first_p50, 4
            ),
            "first_query_ratio": round(ratio, 3),
            "failures": failures,
        }
        try:
            with open(args.json, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                payload = {"incremental_index": payload}
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}
        payload["workspace_churn"] = metrics
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nchurn metrics merged into {args.json} "
              "under 'workspace_churn'")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nOK: first query after an add stays within the steady-state "
          "latency envelope")
    return 0


def build_telemetry_workspace(dataset, *, telemetry: bool) -> Workspace:
    workspace = Workspace(WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw", backend="serial"),
        serving=ServingConfig(telemetry=telemetry),
        default_k=5,
    ))
    workspace.add_dataset(dataset)
    workspace.engine  # pay snapshot construction before timing
    return workspace


def run_telemetry_guard(args: argparse.Namespace) -> int:
    dataset = make_gun_like(num_series=args.series, length=args.length, seed=7)
    rng = np.random.default_rng(11)
    queries = [
        dataset[int(rng.integers(len(dataset)))].values
        + rng.normal(scale=0.05, size=args.length)
        for _ in range(args.queries)
    ]
    print(f"Telemetry overhead guard: {args.series} series x length "
          f"{args.length}, {args.queries} exact queries per pass, "
          f"best p50 of {args.repeats} passes")

    enabled_ws = build_telemetry_workspace(dataset, telemetry=True)
    disabled_ws = build_telemetry_workspace(dataset, telemetry=False)

    # Equivalence gate: telemetry must never change results.
    for query in queries[: min(4, len(queries))]:
        on = enabled_ws.query(query, args.k, mode="exact")
        off = disabled_ws.query(query, args.k, mode="exact")
        if on.ids != off.ids:
            raise SystemExit(
                "FAIL: telemetry-enabled results differ from disabled"
            )
    print("equivalence: telemetry-on hits are identical to telemetry-off")

    def timed_pass(workspace: Workspace) -> List[float]:
        samples = []
        for query in queries:
            started = time.perf_counter()
            workspace.query(query, args.k, mode="exact")
            samples.append(time.perf_counter() - started)
        return samples

    timed_pass(enabled_ws)   # warm both paths before measuring
    timed_pass(disabled_ws)
    # Interleave the passes so drift (thermal, allocator state) hits
    # both configurations symmetrically; best-of damps GC pauses.
    enabled_p50 = min(
        _percentile_ms(timed_pass(enabled_ws), 50)
        for _ in range(args.repeats)
    )
    disabled_p50 = min(
        _percentile_ms(timed_pass(disabled_ws), 50)
        for _ in range(args.repeats)
    )
    delta_ms = enabled_p50 - disabled_p50
    overhead = delta_ms / disabled_p50 if disabled_p50 > 0 else 0.0

    print()
    print(format_table(
        ["configuration", "query p50 (ms)"],
        [
            ["telemetry off", round(disabled_p50, 3)],
            ["telemetry on", round(enabled_p50, 3)],
        ],
        title="Exact-query latency with and without telemetry",
    ))
    print()
    print(f"telemetry overhead: {overhead * 100.0:+.2f}% "
          f"({delta_ms:+.3f} ms at p50; bar: "
          f"{args.max_telemetry_overhead * 100.0:.0f}% or "
          f"{args.telemetry_floor_ms:.2f} ms noise floor)")

    failures: List[str] = []
    if (overhead > args.max_telemetry_overhead
            and delta_ms > args.telemetry_floor_ms):
        failures.append(
            f"enabled-telemetry p50 {enabled_p50:.3f} ms is "
            f"{overhead * 100.0:.1f}% over the disabled p50 "
            f"{disabled_p50:.3f} ms (bar "
            f"{args.max_telemetry_overhead * 100.0:.0f}%, floor "
            f"{args.telemetry_floor_ms:.2f} ms) — instrumentation has "
            "crept onto the hot path"
        )

    if args.json:
        metrics = {
            "series": args.series,
            "length": args.length,
            "queries": args.queries,
            "repeats": args.repeats,
            "enabled_p50_ms": round(enabled_p50, 4),
            "disabled_p50_ms": round(disabled_p50, 4),
            "overhead_fraction": round(overhead, 4),
            "max_overhead_fraction": args.max_telemetry_overhead,
            "failures": failures,
        }
        try:
            with open(args.json, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                payload = {"incremental_index": payload}
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}
        payload["telemetry_overhead"] = metrics
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\ntelemetry metrics merged into {args.json} "
              "under 'telemetry_overhead'")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nOK: enabled-telemetry latency stays within the overhead bar")
    return 0


_METRIC_LINE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+")


def _check_prometheus_exposition(server: WorkspaceServer) -> Optional[str]:
    """Scrape ``/metrics`` raw; returns a failure message or ``None``."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        content_type = response.getheader("Content-Type")
        text = response.read().decode("utf-8")
    finally:
        conn.close()
    if response.status != 200:
        return f"/metrics answered {response.status}, not 200"
    if content_type != PROMETHEUS_CONTENT_TYPE:
        return (f"/metrics Content-Type {content_type!r} is not the "
                f"exposition-format header {PROMETHEUS_CONTENT_TYPE!r}")
    for line in text.splitlines():
        if not line or line.startswith(("# HELP ", "# TYPE ")):
            continue
        if not _METRIC_LINE.fullmatch(line):
            return f"/metrics line does not parse as exposition 0.0.4: {line!r}"
    return None


def run_http_clients(
    server: WorkspaceServer,
    queries: List[np.ndarray],
    reference: List[Tuple],
    *,
    threads: int,
    k: int,
) -> Tuple[float, List[float]]:
    """T clients fire the query list over HTTP; every response is checked
    bit-identical to its in-process reference before it counts.

    Returns (wall seconds, per-request latency samples).
    """
    samples: List[List[float]] = [[] for _ in range(threads)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def worker(slot: int) -> None:
        try:
            with RemoteWorkspace(server.host, server.port) as remote:
                barrier.wait()
                for qi in range(slot, len(queries), threads):
                    started = time.perf_counter()
                    result = remote.query(queries[qi], k, mode="exact")
                    samples[slot].append(time.perf_counter() - started)
                    got = (result.ids, result.distances)
                    if got != reference[qi]:
                        raise AssertionError(
                            f"HTTP result for query {qi} differs from the "
                            f"in-process result"
                        )
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(slot,))
            for slot in range(threads)]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed, [sample for bucket in samples for sample in bucket]


def run_http_benchmark(args: argparse.Namespace) -> int:
    threads = max(args.threads, 8)  # the contract is >= 8 concurrent clients
    dataset = make_gun_like(num_series=args.series, length=args.length, seed=7)
    rng = np.random.default_rng(11)
    queries = [
        dataset[int(rng.integers(len(dataset)))].values
        + rng.normal(scale=0.05, size=args.length)
        for _ in range(args.queries)
    ]
    workspace = Workspace(WorkspaceConfig(
        engine=EngineConfig(constraint="fc,fw", backend="vectorized"),
        default_k=args.k,
    ))
    workspace.add_dataset(dataset)
    workspace.engine  # pay snapshot construction before timing
    reference = []
    for query in queries:
        result = workspace.query(query, args.k, mode="exact")
        reference.append((result.ids, result.distances))

    print(f"HTTP serving: {args.series} series x length {args.length}, "
          f"{args.queries} queries, {threads} concurrent clients, "
          f"k={args.k}, shard counts 1/2/4")

    failures: List[str] = []
    rows = []
    per_shard_metrics: List[Dict[str, object]] = []
    for num_shards in (1, 2, 4):
        target = (workspace if num_shards == 1
                  else split_workspace(workspace, num_shards))
        server = WorkspaceServer(
            target, port=0, max_inflight=threads, max_pending=4 * threads,
        ).start()
        try:
            run_http_clients(  # warm connections + server pool
                server, queries[:threads], reference[:threads],
                threads=threads, k=args.k,
            )
            best_wall = float("inf")
            latencies: List[float] = []
            for _ in range(args.repeats):
                wall, samples = run_http_clients(
                    server, queries, reference, threads=threads, k=args.k,
                )
                best_wall = min(best_wall, wall)
                latencies.extend(samples)
            exposition_failure = _check_prometheus_exposition(server)
            if exposition_failure is not None:
                failures.append(f"[shards={num_shards}] {exposition_failure}")
        finally:
            server.stop()
            if target is not workspace:
                target.close()
        p50 = _percentile_ms(latencies, 50)
        p99 = _percentile_ms(latencies, 99)
        qps = args.queries / best_wall
        rows.append([num_shards, round(p50, 3), round(p99, 3),
                     round(qps, 1)])
        per_shard_metrics.append({
            "shards": num_shards,
            "p50_ms": round(p50, 4),
            "p99_ms": round(p99, 4),
            "qps": round(qps, 2),
        })

    print()
    print(format_table(
        ["shards", "p50 (ms)", "p99 (ms)", "queries/s"],
        rows,
        title=f"HTTP exact-query latency/throughput ({threads} clients, "
              f"best wall of {args.repeats})",
    ))
    print()
    print("bit-identity: every HTTP response matched the in-process result "
          "at shard counts 1, 2 and 4")

    if args.json:
        metrics = {
            "series": args.series,
            "length": args.length,
            "queries": args.queries,
            "threads": threads,
            "k": args.k,
            "shard_counts": per_shard_metrics,
            "failures": failures,
        }
        try:
            with open(args.json, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                payload = {"incremental_index": payload}
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {}
        payload["serving_http"] = metrics
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nHTTP serving metrics merged into {args.json} "
              "under 'serving_http'")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nOK: /metrics parses as Prometheus exposition format 0.0.4 "
          "at every shard count")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--series", type=int, default=64,
                        help="stored collection size (default: 64)")
    parser.add_argument("--length", type=int, default=128,
                        help="series length (default: 128)")
    parser.add_argument("--queries", type=int, default=48,
                        help="queries fired per configuration (default: 48)")
    parser.add_argument("--threads", type=int, default=8,
                        help="client threads (default: 8)")
    parser.add_argument("--k", type=int, default=5, help="neighbours per query")
    parser.add_argument("--window-ms", type=float, default=2.0,
                        help="micro-batch window (default: 2.0 ms)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions, best-of (default: 3)")
    parser.add_argument("--churn", action="store_true",
                        help="run the serving-churn benchmark (incremental "
                             "snapshots) instead of the throughput run")
    parser.add_argument("--churn-series", type=int, default=10_000,
                        help="stored collection size for --churn "
                             "(default: 10000)")
    parser.add_argument("--churn-rounds", type=int, default=30,
                        help="add/remove/query rounds for --churn "
                             "(default: 30)")
    parser.add_argument("--churn-steady", type=int, default=20,
                        help="steady-state queries timed before the churn "
                             "phase (default: 20)")
    parser.add_argument("--max-first-query-ratio", type=float, default=3.0,
                        help="first-query-after-add p50 must stay within "
                             "this multiple of steady p50 (default: 3.0)")
    parser.add_argument("--first-query-floor-ms", type=float, default=5.0,
                        help="additive floor on the first-query bar, "
                             "absorbs timer noise at tiny scales "
                             "(default: 5.0)")
    parser.add_argument("--http", action="store_true",
                        help="serve the workspace over HTTP and measure "
                             "concurrent-client latency/QPS at shard "
                             "counts 1/2/4 (bit-identity gated)")
    parser.add_argument("--telemetry-guard", action="store_true",
                        help="measure telemetry-on vs telemetry-off query "
                             "latency and gate the overhead")
    parser.add_argument("--max-telemetry-overhead", type=float, default=0.05,
                        help="maximum fractional p50 overhead of enabled "
                             "telemetry (default: 0.05)")
    parser.add_argument("--telemetry-floor-ms", type=float, default=0.25,
                        help="absolute p50 delta below which the overhead "
                             "gate never fires, absorbing timer noise "
                             "(default: 0.25)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="merge churn / telemetry metrics into PATH "
                             "under 'workspace_churn' / "
                             "'telemetry_overhead' (CI artifact)")
    parser.add_argument("--dry-run", "--quick", action="store_true",
                        help="tiny configuration for CI")
    args = parser.parse_args()

    if args.dry_run:
        args.series = 24
        args.length = 96
        args.queries = 16
        args.threads = 4
        args.repeats = 2
        args.churn_series = 300
        args.churn_rounds = 12
        args.churn_steady = 10

    if args.churn:
        return run_churn_benchmark(args)
    if args.telemetry_guard:
        return run_telemetry_guard(args)
    if args.http:
        return run_http_benchmark(args)

    dataset = make_gun_like(num_series=args.series, length=args.length, seed=7)
    rng = np.random.default_rng(11)
    queries = [
        dataset[int(rng.integers(len(dataset)))].values
        + rng.normal(scale=0.05, size=args.length)
        for _ in range(args.queries)
    ]

    print(f"Workspace serving: {args.series} series x length {args.length}, "
          f"{args.queries} queries, {args.threads} threads, k={args.k}")

    unbatched = build_workspace(dataset, micro_batch=False,
                                window_ms=args.window_ms)
    batched = build_workspace(dataset, micro_batch=True,
                              window_ms=args.window_ms)

    # Equivalence gate: the two serving paths must agree bit for bit.
    _, reference = run_clients(unbatched, queries, threads=args.threads, k=args.k)
    _, coalesced = run_clients(batched, queries, threads=args.threads, k=args.k)
    if reference != coalesced:
        raise SystemExit(
            "FAIL: micro-batched results differ from un-batched results"
        )
    print("equivalence: micro-batched hits are bit-identical to un-batched")

    best_unbatched = min(
        run_clients(unbatched, queries, threads=args.threads, k=args.k)[0]
        for _ in range(args.repeats)
    )
    best_batched = min(
        run_clients(batched, queries, threads=args.threads, k=args.k)[0]
        for _ in range(args.repeats)
    )

    qps_unbatched = args.queries / best_unbatched
    qps_batched = args.queries / best_batched
    ratio = qps_batched / qps_unbatched
    batcher = batched._batcher
    per_batch = (
        batcher.requests_batched / batcher.batches_executed
        if batcher is not None and batcher.batches_executed else 0.0
    )

    print()
    print(format_table(
        ["configuration", "wall s", "queries/s"],
        [
            ["un-batched", round(best_unbatched, 4), round(qps_unbatched, 1)],
            ["micro-batched", round(best_batched, 4), round(qps_batched, 1)],
        ],
        title="Concurrent exact-query throughput (best of "
              f"{args.repeats})",
    ))
    print()
    print(f"micro-batched / un-batched throughput: {ratio:.2f}x "
          f"(mean {per_batch:.1f} requests per engine batch)")
    if ratio >= 1.0:
        print("OK: micro-batched throughput >= un-batched")
    else:
        print("note: micro-batching did not pay off at this configuration "
              "(tiny collections or few threads leave nothing to coalesce)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
