"""Incremental index maintenance vs. full rebuilds, plus PQ accounting.

The PR 5 acceptance benchmark.  Over a 50words-like collection it
measures three things:

1. **Incremental speed** — after ``build_index()`` over N series, adding
   A more series one by one through ``Workspace.add``.  With incremental
   maintenance each add extracts the new series' features, quantizes
   them against the frozen codebook/PQ and appends one delta shard
   (O(new features)); the baseline configuration
   (``IndexConfig(incremental=False)``) marks the index stale and pays a
   full ``build_index()`` — codebook refit, re-quantization of all
   N + A series, postings rebuild — to serve indexed queries again.
   The gate: incremental must be at least ``--min-speedup`` (default 5x)
   faster than the rebuild path.

2. **Equivalence** — after the adds, ``compact_index()`` must leave the
   postings bit-identical to ``InvertedIndex.from_bags`` over the
   current collection under the same frozen codebook (a from-scratch
   postings rebuild), and indexed queries at C = N must reproduce the
   exhaustive engine ranking exactly, before and after compaction.

3. **PQ quality and size** — recall@k of ``rank_mode="pq"`` against
   ``rank_mode="tfidf"`` at the default candidate budget (the PQ
   ranking must reach at least TF-IDF's recall) and the residual
   codec's compression ratio (stored code bytes vs. raw ``float32``
   residuals; must be >= ``--min-compression``, default 4x).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_incremental_index.py \
        --base-size 2000 --add 100 --queries 10

``--quick`` shrinks everything for CI; ``--json PATH`` writes the
metrics (the CI perf-guard artifact ``BENCH_ci.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import DescriptorConfig, SDTWConfig
from repro.datasets.synthetic import make_fiftywords_like
from repro.indexing import InvertedIndex
from repro.indexing.searcher import pq_entry_for
from repro.indexing.shards import OPTIONAL_SHARD_MEMBERS, SHARD_MEMBERS
from repro.service import IndexConfig, Workspace, WorkspaceConfig
from repro.utils.tables import format_table

ALL_SHARD_MEMBERS = SHARD_MEMBERS + OPTIONAL_SHARD_MEMBERS


def make_config(args: argparse.Namespace, incremental: bool) -> WorkspaceConfig:
    return WorkspaceConfig(
        sdtw=SDTWConfig(
            descriptor=DescriptorConfig(num_bins=args.descriptor_bins)
        ),
        index=IndexConfig(
            num_codewords=args.codewords,
            num_shards=args.shards,
            candidate_budget=args.candidates,
            seed=args.seed,
            incremental=incremental,
            max_delta_shards=max(args.add + 1, 2),
            pq=True,
            pq_subquantizers=args.pq_subquantizers,
            pq_bits=args.pq_bits,
        ),
        default_k=args.k,
    )


def fill(workspace: Workspace, dataset, start: int, stop: int) -> None:
    for position in range(start, stop):
        ts = dataset[position]
        workspace.add(
            ts.values,
            identifier=ts.identifier or f"series-{position:05d}",
            label=ts.label,
        )


def shards_bit_identical(left: InvertedIndex, right: InvertedIndex) -> bool:
    if (
        left.num_series != right.num_series
        or len(left.shards) != len(right.shards)
        or left.delta_shards or right.delta_shards
        or not np.array_equal(left.idf, right.idf)
    ):
        return False
    for ours, theirs in zip(left.shards, right.shards):
        for member in ALL_SHARD_MEMBERS:
            mine, other = getattr(ours, member), getattr(theirs, member)
            if (mine is None) != (other is None):
                return False
            if mine is not None and not np.array_equal(
                np.asarray(mine), np.asarray(other)
            ):
                return False
    return True


def recall_against_exact(
    workspace: Workspace,
    queries,
    exclude: List[str],
    k: int,
    rank_mode: str,
    candidates: Optional[int] = None,
) -> float:
    recalls = []
    for probe, identifier in zip(queries, exclude):
        exact = workspace.query(probe, k, mode="exact",
                                exclude_identifier=identifier)
        indexed = workspace.query(probe, k, mode="indexed",
                                  candidates=candidates,
                                  exclude_identifier=identifier,
                                  rank_mode=rank_mode)
        want = set(exact.ids)
        recalls.append(len(want & set(indexed.ids)) / len(want) if want else 1.0)
    return float(np.mean(recalls)) if recalls else 1.0


def run_benchmark(args: argparse.Namespace) -> int:
    total = args.base_size + args.add
    dataset = make_fiftywords_like(
        num_series=total, length=args.length, seed=args.seed
    )
    failures: List[str] = []
    metrics: Dict[str, object] = {
        "base_size": args.base_size,
        "added": args.add,
        "length": args.length,
        "codewords": args.codewords,
        "candidate_budget": args.candidates,
        "k": args.k,
    }

    # ---------------------------------------------------------------- #
    # 1. Incremental adds vs. stale-and-rebuild
    # ---------------------------------------------------------------- #
    incremental_ws = Workspace(make_config(args, incremental=True))
    fill(incremental_ws, dataset, 0, args.base_size)
    incremental_ws.build_index()
    started = time.perf_counter()
    fill(incremental_ws, dataset, args.base_size, total)
    assert incremental_ws.has_index, "incremental add must keep the index fresh"
    incremental_seconds = time.perf_counter() - started
    delta_shards = incremental_ws.stats()["index"]["delta_shards"]

    rebuild_ws = Workspace(make_config(args, incremental=False))
    fill(rebuild_ws, dataset, 0, args.base_size)
    rebuild_ws.build_index()
    started = time.perf_counter()
    fill(rebuild_ws, dataset, args.base_size, total)
    assert not rebuild_ws.has_index, "non-incremental add must go stale"
    rebuild_ws.build_index()
    rebuild_seconds = time.perf_counter() - started

    speedup = (
        rebuild_seconds / incremental_seconds if incremental_seconds > 0
        else float("inf")
    )
    metrics["incremental_seconds"] = round(incremental_seconds, 4)
    metrics["rebuild_seconds"] = round(rebuild_seconds, 4)
    metrics["incremental_speedup"] = round(speedup, 2)
    metrics["delta_shards_after_adds"] = int(delta_shards)
    if speedup < args.min_speedup:
        failures.append(
            f"incremental adds only {speedup:.1f}x faster than a full "
            f"rebuild (bar: {args.min_speedup:.1f}x)"
        )

    # ---------------------------------------------------------------- #
    # 2. Equivalence: C = N vs. exact, compaction vs. fresh postings
    # ---------------------------------------------------------------- #
    num_queries = min(args.queries, total)
    probes = [dataset[i].values for i in range(num_queries)]
    exclude = [incremental_ws.identifiers[i] for i in range(num_queries)]

    full_budget = recall_against_exact(
        incremental_ws, probes[:3], exclude[:3], args.k, "tfidf",
        candidates=total,
    )
    if full_budget != 1.0:
        failures.append(
            f"C=N recall over the delta-sharded index was {full_budget:.3f}, "
            f"expected exactly 1.0"
        )

    searcher = incremental_ws.searcher
    stored = searcher.engine.stored_items()
    store_features = [
        list(incremental_ws._store.features_of(identifier))
        for identifier, _, _ in stored
    ]
    lengths = [values.size for _, values, _ in stored]
    bags = [
        searcher.codebook.bag(feats, length)
        for feats, length in zip(store_features, lengths)
    ]
    entries = [
        pq_entry_for(searcher.codebook, searcher.pq, feats, length)
        for feats, length in zip(store_features, lengths)
    ]
    fresh = InvertedIndex.from_bags(
        bags, searcher.codebook.num_codewords,
        num_shards=args.shards, pq_entries=entries,
    )
    incremental_ws.compact_index()
    compacted = incremental_ws.searcher.index
    identical = shards_bit_identical(compacted, fresh)
    metrics["compact_bit_identical"] = bool(identical)
    if not identical:
        failures.append(
            "compact() output differs from a from-scratch postings rebuild "
            "under the frozen codebook"
        )
    post_compact = recall_against_exact(
        incremental_ws, probes[:3], exclude[:3], args.k, "tfidf",
        candidates=total,
    )
    if post_compact != 1.0:
        failures.append(
            f"C=N recall after compaction was {post_compact:.3f}, "
            f"expected exactly 1.0"
        )

    # ---------------------------------------------------------------- #
    # 3. PQ ranking quality and compression
    # ---------------------------------------------------------------- #
    started = time.perf_counter()
    tfidf_recall = recall_against_exact(
        incremental_ws, probes, exclude, args.k, "tfidf"
    )
    tfidf_seconds = time.perf_counter() - started
    started = time.perf_counter()
    pq_recall = recall_against_exact(
        incremental_ws, probes, exclude, args.k, "pq"
    )
    pq_seconds = time.perf_counter() - started
    compression = incremental_ws.searcher.pq.compression_ratio
    metrics["tfidf_recall"] = round(tfidf_recall, 4)
    metrics["pq_recall"] = round(pq_recall, 4)
    metrics["pq_compression_ratio"] = round(compression, 2)
    if pq_recall < tfidf_recall:
        failures.append(
            f"PQ ranking recall@{args.k} {pq_recall:.3f} fell below the "
            f"TF-IDF baseline {tfidf_recall:.3f} at C={args.candidates}"
        )
    if compression < args.min_compression:
        failures.append(
            f"PQ compression {compression:.1f}x below the "
            f"{args.min_compression:.1f}x bar"
        )

    print(format_table(
        ["metric", "value"],
        [
            ["collection (base + added)", f"{args.base_size} + {args.add}"],
            ["incremental add total", f"{incremental_seconds:.3f} s"],
            ["stale + full rebuild", f"{rebuild_seconds:.3f} s"],
            ["incremental speedup", f"{speedup:.1f}x"],
            ["delta shards after adds", delta_shards],
            ["compact == fresh rebuild", "yes" if identical else "NO"],
            [f"recall@{args.k} tfidf (C={args.candidates})",
             f"{tfidf_recall:.3f} ({tfidf_seconds:.2f} s)"],
            [f"recall@{args.k} pq (C={args.candidates})",
             f"{pq_recall:.3f} ({pq_seconds:.2f} s)"],
            ["pq compression vs raw residuals", f"{compression:.1f}x"],
        ],
        title="Incremental index maintenance + PQ candidate scoring",
    ))

    if args.json:
        metrics["failures"] = failures
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2)
            handle.write("\n")
        print(f"\nmetrics written to {args.json}")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nAll acceptance checks passed.")
    return 0


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--base-size", type=int, default=2000,
                        help="series indexed before the incremental adds "
                             "(default: 2000)")
    parser.add_argument("--add", type=int, default=100,
                        help="series added after build_index (default: 100)")
    parser.add_argument("--length", type=int, default=180,
                        help="series length (default: 180)")
    parser.add_argument("--codewords", type=int, default=256,
                        help="codebook size (default: 256)")
    parser.add_argument("--shards", type=int, default=4,
                        help="base postings shards (default: 4)")
    parser.add_argument("--candidates", type=int, default=64,
                        help="candidate budget for the recall comparison "
                             "(default: 64)")
    parser.add_argument("--queries", type=int, default=10,
                        help="stored series replayed as queries (default: 10)")
    parser.add_argument("--k", type=int, default=10, help="neighbours per query")
    parser.add_argument("--descriptor-bins", type=int, default=32,
                        help="descriptor length (default: 32)")
    parser.add_argument("--pq-subquantizers", type=int, default=8)
    parser.add_argument("--pq-bits", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="incremental-vs-rebuild bar (default: 5.0)")
    parser.add_argument("--min-compression", type=float, default=4.0,
                        help="PQ compression bar (default: 4.0)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the metrics as JSON (CI artifact)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny CI configuration (same gates)")
    args = parser.parse_args(argv)
    if args.quick:
        args.base_size = 220
        args.add = 20
        args.length = 96
        args.codewords = 48
        args.shards = 2
        args.candidates = 24
        args.queries = 5
        args.k = 5
        args.descriptor_bins = 16
        args.pq_subquantizers = 4
    return args


if __name__ == "__main__":
    sys.exit(run_benchmark(parse_args()))
