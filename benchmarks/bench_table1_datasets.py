"""Benchmark / reproduction of Table 1 (data-set overview).

Generates the three synthetic analogue collections at paper scale and
reports their summaries next to the paper's values.
"""

from __future__ import annotations

from _bench_utils import save_result

from repro.experiments import run_table1


def test_table1_dataset_overview(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_table1(seed=7), rounds=1, iterations=1
    )
    save_result(results_dir, "table1", result)
    for row in result.rows:
        name = str(row[0])
        benchmark.extra_info[f"{name}_length"] = row[1]
        benchmark.extra_info[f"{name}_series"] = row[2]
        benchmark.extra_info[f"{name}_classes"] = row[3]
    assert len(result.rows) == 3
