"""Benchmark history: append each CI perf run, compare to a rolling baseline.

The perf-guard benchmarks merge their metrics into ``BENCH_ci.json``
(sections ``incremental_index``, ``workspace_churn``,
``telemetry_overhead``, ...), but each CI run starts from scratch — a
5%-per-PR latency creep sails under every absolute guard.  This tool
gives the guards a memory:

* ``--input BENCH_ci.json`` is flattened to dotted numeric leaves
  (``workspace_churn.steady_p50_ms``) and appended as one run to
  ``--history BENCH_history.json`` (carried across runs by the CI
  cache and uploaded as an artifact);
* every metric is compared against its **rolling baseline** — the
  median of that metric over the last ``--baseline-window`` prior runs
  (median, so one noisy run cannot poison the baseline);
* metrics whose name says which way is better (``*_seconds``, ``*_ms``,
  ``p50``/``p99``, ``overhead`` are lower-better; ``speedup``,
  ``recall``, ``qps``, ``throughput``, ``compression`` are
  higher-better) are flagged as REGRESSED when they land more than
  ``--tolerance`` on the wrong side of the baseline; everything else is
  tracked without judgement.

By default regressions are **advisory** (printed, exit 0): shared CI
runners are too noisy for a hard relative gate, and the absolute guards
still gate.  ``--fail-on-regression`` turns them into failures for
local use on a quiet machine.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Optional, Tuple

HISTORY_FORMAT = "repro-bench-history"
HISTORY_VERSION = 1

_HIGHER_BETTER = ("speedup", "recall", "qps", "throughput", "compression")
_LOWER_BETTER = ("seconds", "_ms", "p50", "p99", "overhead", "wait", "ratio")


def flatten_metrics(payload: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested dict as dotted keys (bools excluded)."""
    flat: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, name))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        flat[prefix] = float(payload)
    return flat


def direction_of(metric: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` when the name says which way is
    better, ``None`` for tracked-only metrics.  Higher-better needles
    win ties (``compression_ratio`` is a ratio *and* a compression)."""
    lowered = metric.lower()
    if any(needle in lowered for needle in _HIGHER_BETTER):
        return "higher"
    if any(needle in lowered for needle in _LOWER_BETTER):
        return "lower"
    return None


def load_history(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            history = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return {"format": HISTORY_FORMAT, "version": HISTORY_VERSION,
                "runs": []}
    if (
        not isinstance(history, dict)
        or history.get("format") != HISTORY_FORMAT
        or not isinstance(history.get("runs"), list)
    ):
        # Unrecognised content: start fresh rather than crash the job.
        return {"format": HISTORY_FORMAT, "version": HISTORY_VERSION,
                "runs": []}
    return history


def rolling_baseline(
    runs: List[dict], metric: str, window: int
) -> Optional[float]:
    """Median of *metric* over the last *window* runs that recorded it."""
    values = [
        run["metrics"][metric]
        for run in runs
        if isinstance(run.get("metrics"), dict) and metric in run["metrics"]
    ][-window:]
    if not values:
        return None
    return float(statistics.median(values))


def compare(
    metrics: Dict[str, float],
    prior_runs: List[dict],
    *,
    window: int,
    tolerance: float,
) -> Tuple[List[List[str]], List[str]]:
    """Comparison rows for every metric plus the regressed metric names."""
    rows: List[List[str]] = []
    regressions: List[str] = []
    for metric in sorted(metrics):
        value = metrics[metric]
        baseline = rolling_baseline(prior_runs, metric, window)
        direction = direction_of(metric)
        if baseline is None:
            verdict = "new"
            delta = "-"
        else:
            delta = (
                f"{(value - baseline) / baseline:+.1%}"
                if baseline else f"{value - baseline:+.4g}"
            )
            if direction is None:
                verdict = "tracked"
            else:
                worse = (
                    value > baseline * (1.0 + tolerance)
                    if direction == "lower"
                    else value < baseline * (1.0 - tolerance)
                )
                verdict = "REGRESSED" if worse else "ok"
                if worse:
                    regressions.append(metric)
        rows.append([
            metric,
            f"{value:.4g}",
            "-" if baseline is None else f"{baseline:.4g}",
            delta,
            verdict,
        ])
    return rows, regressions


def format_rows(rows: List[List[str]]) -> str:
    headers = ["metric", "value", "baseline", "delta", "verdict"]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows))
        for col in range(len(headers))
    ] if rows else [len(header) for header in headers]
    lines = [
        "  ".join(header.ljust(widths[col])
                  for col, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[col])
                               for col, cell in enumerate(row)))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Append a benchmark run to the history file and flag "
                    "regressions against the rolling baseline.")
    parser.add_argument("--input", default="BENCH_ci.json", metavar="PATH",
                        help="metrics JSON written by the perf-guard "
                             "benchmarks (default: BENCH_ci.json)")
    parser.add_argument("--history", default="BENCH_history.json",
                        metavar="PATH",
                        help="history file to append to "
                             "(default: BENCH_history.json)")
    parser.add_argument("--baseline-window", type=int, default=5,
                        help="prior runs the rolling median baseline "
                             "covers (default: 5)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="relative drift on the wrong side of the "
                             "baseline that counts as a regression "
                             "(default: 0.30)")
    parser.add_argument("--run-id", default=None,
                        help="identifier recorded with this run "
                             "(default: $GITHUB_RUN_ID or local-<pid>)")
    parser.add_argument("--max-runs", type=int, default=200,
                        help="runs retained in the history file "
                             "(default: 200)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any metric regressed (default: "
                             "advisory — print and exit 0)")
    args = parser.parse_args(argv)

    try:
        with open(args.input, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        print(f"error: metrics file not found: {args.input}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: unparseable metrics file {args.input}: {exc}",
              file=sys.stderr)
        return 2
    metrics = flatten_metrics(payload)
    if not metrics:
        print(f"error: no numeric metrics found in {args.input}",
              file=sys.stderr)
        return 2

    history = load_history(args.history)
    prior_runs = list(history["runs"])
    rows, regressions = compare(
        metrics, prior_runs,
        window=max(1, args.baseline_window),
        tolerance=max(0.0, args.tolerance),
    )

    run_id = (
        args.run_id
        or os.environ.get("GITHUB_RUN_ID")
        or f"local-{os.getpid()}"
    )
    history["runs"].append({
        "run_id": str(run_id),
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "metrics": metrics,
    })
    history["runs"] = history["runs"][-max(1, args.max_runs):]
    with open(args.history, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")

    print(f"run {run_id}: {len(metrics)} metrics vs a median-of-"
          f"{min(len(prior_runs), args.baseline_window)} baseline "
          f"({len(prior_runs)} prior runs in {args.history})")
    print()
    print(format_rows(rows))
    if regressions:
        print()
        for metric in regressions:
            print(f"REGRESSED: {metric} drifted more than "
                  f"{args.tolerance:.0%} past its rolling baseline")
        if args.fail_on_regression:
            return 1
        print("(advisory: the absolute perf guards remain the gate)")
    else:
        print()
        print("no regressions against the rolling baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
