"""Shared fixtures for the benchmark suite.

Every table/figure of the paper has a benchmark module here.  Each bench

* runs the corresponding experiment from :mod:`repro.experiments` at a
  reduced-but-representative scale (the full paper-scale runs are available
  through the CLI: ``python -m repro experiment <id> --num-series <n>``),
* records the headline numbers in ``benchmark.extra_info`` so they appear
  in the pytest-benchmark output, and
* writes the full reproduced table to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os

import pytest

from _bench_utils import RESULTS_DIR


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory where benches dump the reproduced tables."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
