"""Scaling benchmark: batch distance engine vs. the seed sequential path.

Measures end-to-end k-NN retrieval wall-clock across collection sizes and
worker counts, comparing

* ``seed`` — the seed repository's sequential ``TimeSeriesSearchEngine``
  algorithm, reproduced literally below (LB_Keogh-ranked candidates, no
  LB_Kim stage, no early abandoning, one pair at a time) so the baseline
  stays fixed as the library evolves;
* the cascaded :class:`repro.engine.DistanceEngine` under its three
  backends, with the multiprocessing backend swept over worker counts.

Every configuration is verified to return *identical* hit rankings before
its timing is reported.  Run it directly::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py \
        --sizes 50,100,200 --length 256 --queries 10 --k 10 --workers 1,2,4

The acceptance bar for the engine PR: on a synthetic 200-series collection
(length 256), the multiprocessing + cascade engine must answer a 10-query
k-NN workload at least 3x faster than the seed sequential path.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.sdtw import SDTW
from repro.datasets.synthetic import make_gun_like
from repro.dtw.lower_bounds import keogh_envelope, lb_keogh
from repro.engine import DistanceEngine
from repro.utils.preprocessing import resample_linear
from repro.utils.tables import format_table


def build_collection(num_series: int, length: int, seed: int):
    """A labelled synthetic collection of equal-length series."""
    dataset = make_gun_like(num_series=num_series, seed=seed)
    series = [resample_linear(ts.values, length) for ts in dataset]
    labels = [ts.label for ts in dataset]
    identifiers = [f"s{i:05d}" for i in range(num_series)]
    return series, labels, identifiers


def seed_sequential_knn(
    series: Sequence[np.ndarray],
    queries: Sequence[np.ndarray],
    exclude: Sequence[int],
    k: int,
    constraint: str,
    lb_radius_fraction: Optional[float] = 0.10,
) -> List[Tuple[int, ...]]:
    """The seed TimeSeriesSearchEngine query loop, verbatim semantics.

    Candidates are ranked by their LB_Keogh bound, pruned against the
    running k-th best distance, and refined with a full (non-abandoning)
    sDTW computation one pair at a time.
    """
    engine = SDTW(SDTWConfig())
    envelopes = []
    for values in series:
        radius = max(1, int(round(lb_radius_fraction * values.size)))
        envelopes.append(keogh_envelope(values, radius))
        engine.extract_features(values)

    rankings: List[Tuple[int, ...]] = []
    for qi, query in enumerate(queries):
        candidates = []
        for index, values in enumerate(series):
            if index == exclude[qi]:
                continue
            radius = max(1, int(round(lb_radius_fraction * values.size)))
            bound = lb_keogh(query, values, radius, envelope=envelopes[index])
            candidates.append((bound, index))
        candidates.sort()
        hits: List[Tuple[float, int]] = []
        worst = np.inf
        for bound, index in candidates:
            if len(hits) >= k and bound > worst:
                continue
            result = engine.distance(query, series[index], constraint)
            hits.append((result.distance, index))
            hits.sort()
            if len(hits) > k:
                hits = hits[:k]
            if len(hits) == k:
                worst = hits[-1][0]
        rankings.append(tuple(index for _, index in hits))
    return rankings


def run_benchmark(
    sizes: Sequence[int],
    length: int,
    num_queries: int,
    k: int,
    worker_counts: Sequence[int],
    constraint: str,
    seed: int,
) -> List[List[object]]:
    rows: List[List[object]] = []
    for size in sizes:
        series, labels, identifiers = build_collection(size, length, seed)
        queries = series[:num_queries]
        exclude_indices = list(range(num_queries))
        exclude_ids = identifiers[:num_queries]

        start = time.perf_counter()
        seed_rankings = seed_sequential_knn(
            series, queries, exclude_indices, k, constraint
        )
        seed_seconds = time.perf_counter() - start
        rows.append([size, "seed sequential", "-", seed_seconds, 1.0, "yes"])

        configurations = [("serial", None), ("vectorized", None)]
        configurations += [("multiprocessing", w) for w in worker_counts]
        for backend, workers in configurations:
            engine = DistanceEngine(
                constraint, backend=backend, num_workers=workers
            )
            for ident, values, label in zip(identifiers, series, labels):
                engine.add(values, identifier=ident, label=label)
            engine.prepare()
            start = time.perf_counter()
            result = engine.knn(queries, k=k, exclude_identifiers=exclude_ids)
            elapsed = time.perf_counter() - start
            identical = result.rankings() == seed_rankings
            rows.append([
                size,
                f"engine {backend}",
                "-" if workers is None else workers,
                elapsed,
                seed_seconds / elapsed if elapsed > 0 else float("inf"),
                "yes" if identical else "NO",
            ])
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="50,100,200",
                        help="comma-separated collection sizes")
    parser.add_argument("--length", type=int, default=256,
                        help="series length after resampling")
    parser.add_argument("--queries", type=int, default=10,
                        help="number of queries per configuration")
    parser.add_argument("--k", type=int, default=10, help="neighbours per query")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts for multiprocessing")
    parser.add_argument("--constraint", default="fc,fw",
                        help="refinement constraint family")
    parser.add_argument("--seed", type=int, default=7, help="generation seed")
    args = parser.parse_args(list(argv) if argv is not None else None)

    sizes = [int(v) for v in args.sizes.split(",") if v]
    workers = [int(v) for v in args.workers.split(",") if v]
    rows = run_benchmark(sizes, args.length, args.queries, args.k, workers,
                         args.constraint, args.seed)
    print(format_table(
        ["series", "configuration", "workers", "seconds", "speedup", "identical"],
        rows,
        title=(f"Engine scaling vs. seed sequential path "
               f"(length={args.length}, queries={args.queries}, k={args.k}, "
               f"constraint={args.constraint})"),
    ))
    worst = min(
        (row[4] for row in rows if str(row[1]).startswith("engine multiprocessing")),
        default=0.0,
    )
    print(f"\nminimum multiprocessing speedup over seed: {worst:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
