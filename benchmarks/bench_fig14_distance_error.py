"""Benchmark / reproduction of Figure 14 (distance error vs. time gain).

The paper's qualitative findings asserted here:

* fixed core & fixed width algorithms show the largest distance errors,
* adaptive-core algorithms reduce the error dramatically at comparable
  cell savings,
* errors shrink as the fixed band gets wider.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_result, summarise_rows

from repro.experiments import run_fig14

DATASETS = ("gun", "trace", "50words")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig14_distance_error_vs_time_gain(benchmark, results_dir, dataset):
    result = benchmark.pedantic(
        lambda: run_fig14(dataset_names=(dataset,), num_series=14, seed=7),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, f"fig14_{dataset}", result)
    errors = summarise_rows(result, value_column=2)
    gains = summarise_rows(result, value_column=4)
    benchmark.extra_info["distance_error"] = errors
    benchmark.extra_info["cell_gain"] = gains

    # Wider fixed bands shrink the error.
    assert errors["(fc,fw) 20%"] <= errors["(fc,fw) 6%"] + 1e-9
    # Adapting the core at the same width shrinks the error further.
    assert errors["(ac,fw) 10%"] <= errors["(fc,fw) 10%"] + 1e-9
    # The adaptive core & adaptive width algorithms sit at the low-error end.
    assert errors["(ac,aw)"] <= errors["(fc,fw) 6%"]
