"""Benchmark / reproduction of Figure 15 (intra-class distance errors, Trace).

Within-class pairs are the hardest to estimate accurately; the paper shows
fixed-core algorithms degrade badly there while adaptive-core algorithms
keep the error an order of magnitude lower.
"""

from __future__ import annotations

from _bench_utils import save_result, summarise_rows

from repro.experiments import run_fig15


def test_fig15_intra_class_distance_errors(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig15(dataset_name="trace", num_series=16, seed=7),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, "fig15", result)
    intra = summarise_rows(result, value_column=1, label_column=0)
    benchmark.extra_info["intra_class_error"] = intra

    # Paper shape: the adaptive-core algorithms keep intra-class errors well
    # below the narrow fixed-core band.
    assert intra["(ac,aw)"] <= intra["(fc,fw) 6%"]
    assert intra["(ac,fw) 10%"] <= intra["(fc,fw) 10%"] + 1e-9
