"""Benchmark / reproduction of Figure 16 (classification accuracy, 50Words).

k-NN classification accuracy (Jaccard overlap of the label sets produced
with full DTW vs. the constrained algorithms) on the 50Words-like data set,
which has the most classes and is therefore the hardest labelling task.
"""

from __future__ import annotations

from _bench_utils import save_result, summarise_rows

from repro.experiments import run_fig16


def test_fig16_classification_accuracy(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig16(dataset_name="50words", num_series=20, seed=7),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, "fig16", result)
    top5 = summarise_rows(result, value_column=1, label_column=0)
    top10 = summarise_rows(result, value_column=2, label_column=0)
    benchmark.extra_info["top5_classification"] = top5
    benchmark.extra_info["top10_classification"] = top10

    # Paper shape: adaptive core & width improves (or matches) the narrow
    # fixed-core band's agreement with the full-DTW labelling.
    assert top5["(ac,aw)"] >= top5["(fc,fw) 6%"] - 0.05
    assert all(0.0 <= value <= 1.0 for value in top5.values())
